"""Process-pool cell scheduler with deterministic reassembly.

Every experiment driver enumerates **cells** — pure, picklable
``(fn, kwargs)`` units, one per grid point ``(config, size, seed)`` —
and a scheduler owns execution order.  Sequential execution is the
degenerate schedule (``jobs=1``); ``jobs>1`` fans cells out over a
``ProcessPoolExecutor``.  Results are reassembled **by submission
index**, never by completion order, so the assembled output is
byte-identical whatever the job count (the determinism half of
DESIGN.md's "Parallelism contract"; ``tests/test_parallel.py`` pins it).

Cell rules (what makes a function safe to pool):

* module-level (picklable by qualified name), primitives/dataclasses in
  ``kwargs``, a picklable return value;
* self-seeded — every random stream derived from the cell's own
  parameters (``derive_seed``), never from shared process state;
* no mutation of globals the assembler reads.

Cells marked ``serial=True`` (wall-clock measurements such as
``scale_profile``) run in the parent, *after* the pool has drained, so
their timings never share a machine with sibling workers.

Workers inherit the parent's snapshot-cache settings through the pool
initializer (:func:`repro.experiments.snapshot.apply_config`), so a
cell's cached build behaves identically in-process and pooled.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments import snapshot


@dataclass(frozen=True)
class Cell:
    """One pure unit of experiment work: ``fn(**kwargs)``.

    ``group`` labels which driver the cell belongs to (the suite runner
    slices results back out by group); ``serial`` keeps wall-clock cells
    out of the pool.
    """

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    group: str = ""
    serial: bool = False

    def run(self) -> Any:
        return self.fn(**self.kwargs)


def cell(
    fn: Callable[..., Any],
    group: str = "",
    serial: bool = False,
    **kwargs: Any,
) -> Cell:
    """Convenience constructor: ``cell(fn, n_peers=100, seed=0)``."""
    return Cell(fn=fn, kwargs=kwargs, group=group, serial=serial)


def default_jobs() -> int:
    """The job count when a CLI flag is absent: ``REPRO_JOBS`` or 1."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - platforms without affinity
        return os.cpu_count() or 1


def _worker_init(snapshot_config: Optional[dict]) -> None:
    snapshot.apply_config(snapshot_config)


def _run_cell(c: Cell) -> Any:
    return c.run()


def run_cells(cells: Sequence[Cell], jobs: int = 1) -> List[Any]:
    """Execute every cell; results in cell order regardless of ``jobs``.

    ``jobs<=1`` runs everything inline.  Otherwise pooled cells are
    submitted in order to a ``ProcessPoolExecutor`` and collected by
    index; ``serial`` cells then run in the parent once the pool has
    shut down (so the machine is quiet for their wall-clock phase).  A
    cell that raises propagates — a broken grid point should fail the
    run, not silently hole the table.

    ``jobs`` is an upper bound on concurrency, not a worker count: the
    pool never runs more workers than the machine has schedulable cores
    (:func:`available_cpus`), because cells are CPU-bound simulations —
    oversubscribed workers only add context-switch and IPC tax (~20% of
    suite wall-clock measured at ``--jobs 4`` on one core).
    """
    cells = list(cells)
    jobs = max(1, int(jobs))
    pooled = [(i, c) for i, c in enumerate(cells) if not c.serial]
    if jobs == 1 or len(pooled) < 2:
        return [c.run() for c in cells]

    results: List[Any] = [None] * len(cells)
    # fork keeps worker start cheap and inherits loaded modules; fall
    # back to the platform default where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(pooled), available_cpus()),
        mp_context=ctx,
        initializer=_worker_init,
        initargs=(snapshot.exported_config(),),
    ) as pool:
        futures = [(i, pool.submit(_run_cell, c)) for i, c in pooled]
        for i, future in futures:
            results[i] = future.result()
    for i, c in enumerate(cells):
        if c.serial:
            results[i] = c.run()
    return results


def run_grouped(
    cells: Sequence[Cell], jobs: int = 1
) -> Dict[str, List[Any]]:
    """Run one flat plan, slice results back per ``group`` label.

    The suite runner concatenates every driver's cells into a single
    plan so the pool stays saturated across driver boundaries, then
    hands each driver its own slice (in that driver's enumeration
    order) for assembly.
    """
    outputs = run_cells(cells, jobs=jobs)
    grouped: Dict[str, List[Any]] = {}
    for c, output in zip(cells, outputs):
        grouped.setdefault(c.group, []).append(output)
    return grouped
