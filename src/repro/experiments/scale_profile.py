"""Scale profile: wall-clock cost of the runtime itself, N=1000 to N=10k.

Every other experiment measures the *overlay* (messages, hops, latency in
simulated units).  This one measures the *simulator*: how much real time
and memory the event engine, hop pricing and workload driver burn to push
a BATON churn-and-query run through, as the population grows to the
paper's N=10k (§V evaluates up to 10,000 nodes; D²-Tree and ART argue
their bounds at 10⁴–10⁵).  A reproduction that cannot execute the paper's
own N cheaply leaves the headline scale claim unverified — this driver is
the regression guard that keeps it cheap.

Phases timed per population:

* **build** — growing the loaded network join by join;
* **drive** — the concurrent churn+query window on the event runtime
  (event-log recording off, futures released as they complete: the
  workload configuration of DESIGN.md's "Performance contract");

plus the engine's own counters: events executed, events per wall-second,
and the heap's high-water mark (which the cancellation tombstones keep
near the live pending count).

``run()`` sweeps the experiment scale's populations (the full
1000/2500/5000/10000 grid under ``REPRO_FULL_SCALE=1``);
:func:`collect_benchmark` produces the machine-readable ``BENCH_scale.json``
payload behind ``python -m repro profile`` and ``benchmarks/bench_scale.py``
— the repo's benchmark trajectory (compare trajectory points across
commits to see the runtime getting faster or slower).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import overlays
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_loaded,
    default_scale,
    loaded_keys,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.sim.faults import FaultPlan
from repro.sim.latency import ExponentialLatency
from repro.util.rng import SeededRng, derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "build cost grows near-linearly in N (each join is O(log N) messages); "
    "drive cost tracks executed events, not population, so events/sec stays "
    "roughly flat across N; the heap high-water mark stays near the live "
    "pending count (tombstone compaction) rather than growing with total "
    "scheduled events"
)

#: The fixed workload window each population is driven through.  Rates are
#: per simulated time unit; the arrival volume is independent of N, so the
#: drive phase isolates per-event cost while build isolates per-peer cost.
DURATION = 20.0
CHURN_RATE = 1.0
QUERY_RATE = 16.0
DATA_PER_NODE = 20

#: Rates for the pub/sub benchmark cell: the same window with publishes
#: and subscription installs layered on top (multicast fan-outs dominate
#: the extra events, so ``events_per_s`` covers the dissemination path).
PUBSUB_PUBLISH_RATE = 2.0
PUBSUB_SUBSCRIBE_RATE = 1.0

#: Window for the locality (route cache) benchmark cell.  Cache entries
#: are recorded when walks *complete*, so the window must be several
#: multiples of the walk latency for the steady-state hit rate to show
#: (see ``experiments/locality.py`` on warm-up); the standard shortened
#: 10k window is too tight for that.
CACHE_DURATION = 30.0


def peak_rss_mb() -> float:
    """The run's resident high-water mark, in MiB.

    ``ru_maxrss`` is kernel-reported (KiB on Linux), costs one syscall, and
    never decreases — within a sweep it reflects the largest population
    profiled so far, so read it per row and compare rows at equal N.  The
    max over ``RUSAGE_SELF`` and ``RUSAGE_CHILDREN`` covers both execution
    modes: under ``--jobs`` the builds and drives happen in pool workers,
    whose high-water marks the parent only sees through the reaped-children
    counter.
    """
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(own, children) / 1024


def profile_run(
    n_peers: int,
    seed: int = 0,
    *,
    overlay: str = "baton",
    duration: float = DURATION,
    churn_rate: float = CHURN_RATE,
    query_rate: float = QUERY_RATE,
    data_per_node: int = DATA_PER_NODE,
    publish_rate: float = 0.0,
    subscribe_rate: float = 0.0,
    bulk: bool = True,
    wrap_faults: bool = False,
    cache: bool = False,
) -> Dict[str, object]:
    """One profiled build + drive; returns the phase timings and counters.

    ``bulk`` (default on — this is a scale surface) builds BATON through
    the direct construction path; pass ``bulk=False`` to time the
    join-by-join protocol build instead.  ``wrap_faults`` wraps the
    transport in an *inert* :class:`~repro.sim.faults.FaultPlan` (no
    rates, no windows) — the same workload then runs through the chaos
    transmit path, which is how the zero-overhead guard in
    ``benchmarks/bench_scale.py`` measures the price of the wrapper.
    ``cache`` (BATON only) turns the hot-range route cache on and drives
    the cache's session regime (fixed gateways, hot-slice queries) — the
    cache-path throughput cell of the trajectory.
    """
    locality = None
    if cache:
        from repro.core.cache import DEFAULT_CACHE_SIZE
        from repro.core.network import LocalityConfig

        locality = LocalityConfig(cache_size=DEFAULT_CACHE_SIZE)
    started = time.perf_counter()
    net = build_loaded(
        overlay, n_peers, seed, data_per_node, bulk=bulk, locality=locality
    )
    build_s = time.perf_counter() - started

    rng = SeededRng(derive_seed(seed, "scale-profile"))
    transport = ExponentialLatency(mean=1.0, rng=rng.child("latency"))
    if wrap_faults:
        transport = FaultPlan(transport, seed=derive_seed(seed, "inert"))
    anet = overlays.get(overlay).wrap(
        net,
        topology=transport,
        record_events=False,
        retain_ops=False,
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    workload_keys = keys
    gateways = 0
    if cache:
        from repro.experiments import locality as locality_experiment

        workload_keys = locality_experiment.hot_keys(keys, data_per_node)
        gateways = locality_experiment.GATEWAYS
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=churn_rate,
        query_rate=query_rate,
        publish_rate=publish_rate,
        subscribe_rate=subscribe_rate,
        range_fraction=0.2,
        min_peers=max(8, n_peers // 2),
        client_gateways=gateways,
    )
    started = time.perf_counter()
    report = run_concurrent_workload(
        anet, workload_keys, config, seed=derive_seed(seed, "driver")
    )
    drive_s = time.perf_counter() - started

    events = anet.sim.executed_count
    row: Dict[str, object] = {
        "overlay": overlay,
        "n_peers": n_peers,
        "seed": seed,
        "duration": duration,
        "build": "bulk" if bulk and overlay == "baton" else "join",
        "build_s": round(build_s, 4),
        "drive_s": round(drive_s, 4),
        "total_s": round(build_s + drive_s, 4),
        "events": events,
        "events_per_s": round(events / drive_s, 1) if drive_s > 0 else 0.0,
        "peak_heap": anet.sim.peak_queue_len,
        "pending_end": anet.sim.pending_count,
        "queries": report.query_total,
        "success": round(report.query_success_rate, 4),
        "p50": round(report.query_latency_p50, 3),
        "stretch_p50": round(report.latency_stretch_p50, 3),
        "messages": report.messages_total,
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    if cache:
        # Cache-path cell: tagged so the standard gate (first untagged
        # match by n_peers) never reads it; carries the cache counters.
        row["workload"] = "locality"
        row["hit_rate"] = round(report.cache_hit_rate, 4)
        row["cache_invalidations"] = report.cache_invalidations
    if publish_rate > 0 or subscribe_rate > 0:
        # Dissemination cell: tag it so the baseline gate (first match by
        # n_peers) keeps reading the standard row, and carry the pub/sub
        # counters the trajectory tracks.
        row["workload"] = "pubsub"
        row["multicast_deliveries"] = report.multicasts_delivered
        row["subscriptions"] = report.subscriptions_installed
        row["notifications"] = report.notifications
        row["dup_suppressed"] = report.pubsub_duplicates_suppressed
    return row


#: Columns whose values are wall-clock (or RSS) measurements: real time,
#: not simulated behaviour.  They vary run to run and between execution
#: modes, so :meth:`ExperimentResult.canonical_text` masks them — the
#: parallel-equals-sequential identity is over behaviour, not timing.
VOLATILE_COLUMNS = ["build_s", "drive_s", "events_per_s", "peak_rss_mb"]


def cells(
    scale: ExperimentScale,
    sizes: Optional[tuple[int, ...]] = None,
    overlay: str = "baton",
) -> List[Cell]:
    """One serial cell per N: wall-clock rows must run alone in the parent.

    ``serial=True`` keeps these out of the process pool — a timing sample
    taken while sibling cells saturate the machine's cores measures
    scheduler contention, not the runtime.  The scheduler runs them after
    the pooled cells drain.
    """
    if sizes is None:
        sizes = tuple(scale.sizes)
    return [
        cell(
            profile_run,
            group="profile",
            serial=True,
            n_peers=n_peers,
            seed=0,
            overlay=overlay,
        )
        for n_peers in sizes
    ]


def assemble(
    scale: ExperimentScale,
    outputs: List[Dict[str, object]],
    sizes: Optional[tuple[int, ...]] = None,
    overlay: str = "baton",
) -> ExperimentResult:
    """Sweep populations; one row per N (seed 0 — wall-clock, not stats)."""
    if sizes is None:
        sizes = tuple(scale.sizes)
    result = ExperimentResult(
        figure="Scale profile",
        title=(
            f"Runtime wall-clock vs population ({overlay}, "
            f"window {DURATION} units, query rate {QUERY_RATE}/unit)"
        ),
        columns=[
            "n_peers",
            "build_s",
            "drive_s",
            "events",
            "events_per_s",
            "peak_heap",
            "queries",
            "success",
            "p50",
            "stretch_p50",
            "peak_rss_mb",
        ],
        expectation=EXPECTATION,
        volatile=list(VOLATILE_COLUMNS),
    )
    for row in outputs:
        result.add_row(**{col: row[col] for col in result.columns})
    return result


def run(
    scale: Optional[ExperimentScale] = None,
    sizes: Optional[tuple[int, ...]] = None,
    overlay: str = "baton",
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    outputs = run_cells(cells(scale, sizes, overlay), jobs=jobs)
    return assemble(scale, outputs, sizes, overlay)


#: Format marker for BENCH_scale.json; bump on incompatible layout changes.
#: Schema 2: builds are bulk by default (``build`` marks the path), rows
#: carry ``peak_rss_mb``, and the trajectory includes the N=100k cell.
#: Schema 3: the N=10k cell runs the full window at ``BENCH_10K_QUERY_RATE``
#: (its events/s is not comparable to schema-2 points), and the payload
#: carries a ``workload="suite"`` row — the experiment suite's wall clock,
#: sequential vs ``--jobs``.
BENCH_SCHEMA = 3

#: The populations a benchmark point covers by default (the N=1000 cell is
#: the acceptance driver; 10k is the paper's headline N, run shortened;
#: 100k is the bulk-build scale cell driven through a ~10⁶-event window).
BENCH_SIZES = (1000, 10000, 100000)


#: Query rate for the N=10k benchmark cell.  The old shortened window
#: (half duration, standard rate) pushed ~3k events through in well under
#: a second, so the cell's events/s was dominated by fixed per-run costs
#: (build teardown, report assembly) and read 7x *slower* than N=1000 —
#: pure measurement noise.  10x the rate over the full window sustains
#: tens of thousands of events, putting the cell in the
#: throughput-dominated regime where a real engine regression shows.
BENCH_10K_QUERY_RATE = 160.0


def bench_window(n_peers: int) -> Dict[str, float]:
    """The workload window for one benchmark cell.

    The N=100k cell runs a deliberately heavy window — about a million
    executed events — because that is the scale claim the trajectory
    guards; the 10k cell raises the query rate so the drive is
    throughput-dominated rather than fixed-cost-dominated; everything
    else uses the runall experiment window for comparability.
    """
    if n_peers >= 100_000:
        return {"duration": 50.0, "query_rate": 1000.0}
    if n_peers >= 10_000:
        return {"query_rate": BENCH_10K_QUERY_RATE}
    return {}


#: Worker count for the suite wall-clock row (the acceptance criterion's
#: ``--jobs 4`` configuration).
SUITE_JOBS = 4


def suite_benchmark_row(jobs: int = SUITE_JOBS) -> Dict[str, object]:
    """Time the full experiment suite: bare sequential vs the engine.

    Three passes over the default-scale ``runall``:

    1. **baseline** — the pre-engine configuration: ``jobs=1``, snapshot
       cache off, every cell building its own network;
    2. **cold** — the engine's shipped defaults (``--jobs`` fan-out plus
       the snapshot cache) started in an empty directory: cells sharing
       a base network within the run dedup onto one build;
    3. **warm** — the same engine pass again over the now-populated
       cache: the steady state every rerun after the first sees, since
       the shipped cache directory persists across runs.

    The gated ``speedup`` is baseline over **warm** — the honest number
    for the suite's recurring cost (rerun after a driver tweak, adding
    an overlay, CI on a cached runner); ``cold_s`` records the
    first-run cost next to it so nothing hides.  All three passes must
    produce byte-identical canonical output — that identity is the
    engine's core contract and is asserted here, making this row a
    full-scale end-to-end check as well as a timing.

    Each pass is a **fresh subprocess** running the real
    ``python -m repro.experiments.runall`` command: that is what the row
    claims to price, and in-process passes are not independent — a pool
    forked from a parent fattened by an earlier pass (or by the N=100k
    bench cell) taxes every worker with copy-on-write faults and
    understates the engine by tens of seconds.
    """
    import shutil
    import tempfile

    scale = default_scale()
    root = Path(tempfile.mkdtemp(prefix="repro-suite-bench-"))
    try:
        sequential_s, seq_text = _suite_pass(1, cache_root=None, out=root)
        cold_s, cold_text = _suite_pass(jobs, cache_root=root, out=root)
        warm_s, warm_text = _suite_pass(jobs, cache_root=root, out=root)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if seq_text != cold_text or seq_text != warm_text:
        raise AssertionError(
            "engine suite output diverged from the bare sequential run — "
            "the deterministic-reassembly/snapshot-equivalence contract "
            "is broken"
        )
    results = sum(
        1 for line in seq_text.splitlines() if line.startswith("### ")
    )
    return {
        "workload": "suite",
        "n_peers": max(scale.sizes),
        "jobs": jobs,
        "sequential_s": round(sequential_s, 1),
        "cold_s": round(cold_s, 1),
        "warm_s": round(warm_s, 1),
        "speedup": round(sequential_s / warm_s, 2) if warm_s else 0.0,
        "results": results,
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def _suite_pass(
    jobs: int, cache_root: Optional[Path], out: Path
) -> tuple[float, str]:
    """One timed ``runall`` subprocess; returns (seconds, canonical text).

    ``cache_root=None`` disables the snapshot cache (the pre-engine
    baseline); otherwise the subprocess's cache is pinned to that
    directory.  Scale/jobs/cache environment overrides are stripped so
    the row always prices the default-scale suite under controlled
    settings, whatever the caller's environment (the live CI gate runs
    under ``REPRO_FULL_SCALE=1``, which must not leak into the
    subprocess and turn it into the paper-scale sweep).
    """
    import subprocess
    import sys

    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    for name in (
        "REPRO_FULL_SCALE",
        "REPRO_SCALE_SMOKE",
        "REPRO_JOBS",
        "REPRO_SNAPSHOT_CACHE",
        "REPRO_SNAPSHOT_DIR",
    ):
        env.pop(name, None)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    canonical = out / f"canonical-{jobs}-{os.urandom(4).hex()}.txt"
    command = [
        sys.executable,
        "-m",
        "repro.experiments.runall",
        "--jobs",
        str(jobs),
        "--canonical-out",
        str(canonical),
    ]
    if cache_root is None:
        command.append("--no-snapshot-cache")
    else:
        env["REPRO_SNAPSHOT_DIR"] = str(cache_root)
    started = time.perf_counter()
    subprocess.run(
        command, check=True, env=env, stdout=subprocess.DEVNULL
    )
    elapsed = time.perf_counter() - started
    text = canonical.read_text()
    canonical.unlink()
    return elapsed, text


def collect_benchmark(
    sizes: tuple[int, ...] = BENCH_SIZES,
    seed: int = 0,
    bulk: bool = True,
    suite: bool = False,
) -> Dict[str, object]:
    """Measure one benchmark trajectory point (machine-readable)."""
    rows: List[Dict[str, object]] = []
    # The suite row is measured FIRST, while this process is still
    # small: its engine passes fork worker pools, and forking after the
    # N=100k cell (a ~1 GB parent) taxes every worker with copy-on-write
    # faults, understating the speedup.  It is still *appended* last so
    # the per-N regression gates keep matching the first row per
    # population.
    suite_row = suite_benchmark_row() if suite else None
    for n_peers in sizes:
        rows.append(
            profile_run(n_peers, seed=seed, bulk=bulk, **bench_window(n_peers))
        )
    # The pub/sub cell rides the smallest population: same window with
    # publish/subscribe traffic on top, appended AFTER the standard rows
    # (the regression gate matches the first row per n_peers).
    pubsub_n = min(sizes) if sizes else 1000
    rows.append(
        profile_run(
            pubsub_n,
            seed=seed,
            bulk=bulk,
            publish_rate=PUBSUB_PUBLISH_RATE,
            subscribe_rate=PUBSUB_SUBSCRIBE_RATE,
            **bench_window(pubsub_n),
        )
    )
    # The locality cell rides the paper's headline N when the sweep
    # covers it: route cache on, gateway/hot-slice regime, its own
    # longer window (CACHE_DURATION — hit rate needs warm-up room).
    if 10_000 in sizes:
        rows.append(
            profile_run(
                10_000, seed=seed, bulk=bulk, cache=True,
                duration=CACHE_DURATION,
            )
        )
    if suite_row is not None:
        rows.append(suite_row)
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "bench_scale",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
    }


def write_benchmark(
    path: str,
    sizes: tuple[int, ...] = BENCH_SIZES,
    seed: int = 0,
    bulk: bool = True,
    suite: bool = False,
) -> Dict[str, object]:
    """Measure and dump one trajectory point to ``path`` (JSON)."""
    payload = collect_benchmark(sizes, seed=seed, bulk=bulk, suite=suite)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
