"""Scale profile: wall-clock cost of the runtime itself, N=1000 to N=10k.

Every other experiment measures the *overlay* (messages, hops, latency in
simulated units).  This one measures the *simulator*: how much real time
and memory the event engine, hop pricing and workload driver burn to push
a BATON churn-and-query run through, as the population grows to the
paper's N=10k (§V evaluates up to 10,000 nodes; D²-Tree and ART argue
their bounds at 10⁴–10⁵).  A reproduction that cannot execute the paper's
own N cheaply leaves the headline scale claim unverified — this driver is
the regression guard that keeps it cheap.

Phases timed per population:

* **build** — growing the loaded network join by join;
* **drive** — the concurrent churn+query window on the event runtime
  (event-log recording off, futures released as they complete: the
  workload configuration of DESIGN.md's "Performance contract");

plus the engine's own counters: events executed, events per wall-second,
and the heap's high-water mark (which the cancellation tombstones keep
near the live pending count).

``run()`` sweeps the experiment scale's populations (the full
1000/2500/5000/10000 grid under ``REPRO_FULL_SCALE=1``);
:func:`collect_benchmark` produces the machine-readable ``BENCH_scale.json``
payload behind ``python -m repro profile`` and ``benchmarks/bench_scale.py``
— the repo's benchmark trajectory (compare trajectory points across
commits to see the runtime getting faster or slower).
"""

from __future__ import annotations

import json
import platform
import resource
import time
from typing import Dict, List, Optional

from repro import overlays
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_loaded,
    default_scale,
    loaded_keys,
)
from repro.sim.faults import FaultPlan
from repro.sim.latency import ExponentialLatency
from repro.util.rng import SeededRng, derive_seed
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "build cost grows near-linearly in N (each join is O(log N) messages); "
    "drive cost tracks executed events, not population, so events/sec stays "
    "roughly flat across N; the heap high-water mark stays near the live "
    "pending count (tombstone compaction) rather than growing with total "
    "scheduled events"
)

#: The fixed workload window each population is driven through.  Rates are
#: per simulated time unit; the arrival volume is independent of N, so the
#: drive phase isolates per-event cost while build isolates per-peer cost.
DURATION = 20.0
CHURN_RATE = 1.0
QUERY_RATE = 16.0
DATA_PER_NODE = 20

#: Rates for the pub/sub benchmark cell: the same window with publishes
#: and subscription installs layered on top (multicast fan-outs dominate
#: the extra events, so ``events_per_s`` covers the dissemination path).
PUBSUB_PUBLISH_RATE = 2.0
PUBSUB_SUBSCRIBE_RATE = 1.0

#: Window for the locality (route cache) benchmark cell.  Cache entries
#: are recorded when walks *complete*, so the window must be several
#: multiples of the walk latency for the steady-state hit rate to show
#: (see ``experiments/locality.py`` on warm-up); the standard shortened
#: 10k window is too tight for that.
CACHE_DURATION = 30.0


def peak_rss_mb() -> float:
    """The process's resident high-water mark, in MiB.

    ``ru_maxrss`` is kernel-reported (KiB on Linux), costs one syscall, and
    never decreases — within a sweep it reflects the largest population
    profiled so far, so read it per row and compare rows at equal N.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def profile_run(
    n_peers: int,
    seed: int = 0,
    *,
    overlay: str = "baton",
    duration: float = DURATION,
    churn_rate: float = CHURN_RATE,
    query_rate: float = QUERY_RATE,
    data_per_node: int = DATA_PER_NODE,
    publish_rate: float = 0.0,
    subscribe_rate: float = 0.0,
    bulk: bool = True,
    wrap_faults: bool = False,
    cache: bool = False,
) -> Dict[str, object]:
    """One profiled build + drive; returns the phase timings and counters.

    ``bulk`` (default on — this is a scale surface) builds BATON through
    the direct construction path; pass ``bulk=False`` to time the
    join-by-join protocol build instead.  ``wrap_faults`` wraps the
    transport in an *inert* :class:`~repro.sim.faults.FaultPlan` (no
    rates, no windows) — the same workload then runs through the chaos
    transmit path, which is how the zero-overhead guard in
    ``benchmarks/bench_scale.py`` measures the price of the wrapper.
    ``cache`` (BATON only) turns the hot-range route cache on and drives
    the cache's session regime (fixed gateways, hot-slice queries) — the
    cache-path throughput cell of the trajectory.
    """
    locality = None
    if cache:
        from repro.core.cache import DEFAULT_CACHE_SIZE
        from repro.core.network import LocalityConfig

        locality = LocalityConfig(cache_size=DEFAULT_CACHE_SIZE)
    started = time.perf_counter()
    net = build_loaded(
        overlay, n_peers, seed, data_per_node, bulk=bulk, locality=locality
    )
    build_s = time.perf_counter() - started

    rng = SeededRng(derive_seed(seed, "scale-profile"))
    transport = ExponentialLatency(mean=1.0, rng=rng.child("latency"))
    if wrap_faults:
        transport = FaultPlan(transport, seed=derive_seed(seed, "inert"))
    anet = overlays.get(overlay).wrap(
        net,
        topology=transport,
        record_events=False,
        retain_ops=False,
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    workload_keys = keys
    gateways = 0
    if cache:
        from repro.experiments import locality as locality_experiment

        workload_keys = locality_experiment.hot_keys(keys, data_per_node)
        gateways = locality_experiment.GATEWAYS
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=churn_rate,
        query_rate=query_rate,
        publish_rate=publish_rate,
        subscribe_rate=subscribe_rate,
        range_fraction=0.2,
        min_peers=max(8, n_peers // 2),
        client_gateways=gateways,
    )
    started = time.perf_counter()
    report = run_concurrent_workload(
        anet, workload_keys, config, seed=derive_seed(seed, "driver")
    )
    drive_s = time.perf_counter() - started

    events = anet.sim.executed_count
    row: Dict[str, object] = {
        "overlay": overlay,
        "n_peers": n_peers,
        "seed": seed,
        "duration": duration,
        "build": "bulk" if bulk and overlay == "baton" else "join",
        "build_s": round(build_s, 4),
        "drive_s": round(drive_s, 4),
        "total_s": round(build_s + drive_s, 4),
        "events": events,
        "events_per_s": round(events / drive_s, 1) if drive_s > 0 else 0.0,
        "peak_heap": anet.sim.peak_queue_len,
        "pending_end": anet.sim.pending_count,
        "queries": report.query_total,
        "success": round(report.query_success_rate, 4),
        "p50": round(report.query_latency_p50, 3),
        "stretch_p50": round(report.latency_stretch_p50, 3),
        "messages": report.messages_total,
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    if cache:
        # Cache-path cell: tagged so the standard gate (first untagged
        # match by n_peers) never reads it; carries the cache counters.
        row["workload"] = "locality"
        row["hit_rate"] = round(report.cache_hit_rate, 4)
        row["cache_invalidations"] = report.cache_invalidations
    if publish_rate > 0 or subscribe_rate > 0:
        # Dissemination cell: tag it so the baseline gate (first match by
        # n_peers) keeps reading the standard row, and carry the pub/sub
        # counters the trajectory tracks.
        row["workload"] = "pubsub"
        row["multicast_deliveries"] = report.multicasts_delivered
        row["subscriptions"] = report.subscriptions_installed
        row["notifications"] = report.notifications
        row["dup_suppressed"] = report.pubsub_duplicates_suppressed
    return row


def run(
    scale: Optional[ExperimentScale] = None,
    sizes: Optional[tuple[int, ...]] = None,
    overlay: str = "baton",
) -> ExperimentResult:
    """Sweep populations; one row per N (seed 0 — wall-clock, not stats)."""
    scale = scale or default_scale()
    if sizes is None:
        sizes = tuple(scale.sizes)
    result = ExperimentResult(
        figure="Scale profile",
        title=(
            f"Runtime wall-clock vs population ({overlay}, "
            f"window {DURATION} units, query rate {QUERY_RATE}/unit)"
        ),
        columns=[
            "n_peers",
            "build_s",
            "drive_s",
            "events",
            "events_per_s",
            "peak_heap",
            "queries",
            "success",
            "p50",
            "stretch_p50",
            "peak_rss_mb",
        ],
        expectation=EXPECTATION,
    )
    for n_peers in sizes:
        row = profile_run(n_peers, seed=0, overlay=overlay)
        result.add_row(**{col: row[col] for col in result.columns})
    return result


#: Format marker for BENCH_scale.json; bump on incompatible layout changes.
#: Schema 2: builds are bulk by default (``build`` marks the path), rows
#: carry ``peak_rss_mb``, and the trajectory includes the N=100k cell.
BENCH_SCHEMA = 2

#: The populations a benchmark point covers by default (the N=1000 cell is
#: the acceptance driver; 10k is the paper's headline N, run shortened;
#: 100k is the bulk-build scale cell driven through a ~10⁶-event window).
BENCH_SIZES = (1000, 10000, 100000)


def bench_window(n_peers: int) -> Dict[str, float]:
    """The workload window for one benchmark cell.

    The N=100k cell runs a deliberately heavy window — about a million
    executed events — because that is the scale claim the trajectory
    guards; the 10k cell is shortened so smoke jobs stay in smoke time;
    everything else uses the runall experiment window for comparability.
    """
    if n_peers >= 100_000:
        return {"duration": 50.0, "query_rate": 1000.0}
    if n_peers >= 10_000:
        return {"duration": DURATION / 2}
    return {}


def collect_benchmark(
    sizes: tuple[int, ...] = BENCH_SIZES, seed: int = 0, bulk: bool = True
) -> Dict[str, object]:
    """Measure one benchmark trajectory point (machine-readable)."""
    rows: List[Dict[str, object]] = []
    for n_peers in sizes:
        rows.append(
            profile_run(n_peers, seed=seed, bulk=bulk, **bench_window(n_peers))
        )
    # The pub/sub cell rides the smallest population: same window with
    # publish/subscribe traffic on top, appended AFTER the standard rows
    # (the regression gate matches the first row per n_peers).
    pubsub_n = min(sizes) if sizes else 1000
    rows.append(
        profile_run(
            pubsub_n,
            seed=seed,
            bulk=bulk,
            publish_rate=PUBSUB_PUBLISH_RATE,
            subscribe_rate=PUBSUB_SUBSCRIBE_RATE,
            **bench_window(pubsub_n),
        )
    )
    # The locality cell rides the paper's headline N when the sweep
    # covers it: route cache on, gateway/hot-slice regime, its own
    # longer window (CACHE_DURATION — hit rate needs warm-up room).
    if 10_000 in sizes:
        rows.append(
            profile_run(
                10_000, seed=seed, bulk=bulk, cache=True,
                duration=CACHE_DURATION,
            )
        )
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "bench_scale",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
    }


def write_benchmark(
    path: str,
    sizes: tuple[int, ...] = BENCH_SIZES,
    seed: int = 0,
    bulk: bool = True,
) -> Dict[str, object]:
    """Measure and dump one trajectory point to ``path`` (JSON)."""
    payload = collect_benchmark(sizes, seed=seed, bulk=bulk)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
