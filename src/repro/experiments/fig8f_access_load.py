"""Figure 8(f): access load of nodes at different tree levels.

Paper's reading: the hallmark result — BATON does *not* overload the root.
Insert load is roughly constant across levels, and search load is slightly
*higher* at the leaves than at the root, because the exact-match algorithm
routes sideways and downward and involves upper levels only when the answer
lives there.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton_equalized,
    default_scale,
    loaded_keys,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.net.message import MsgType
from repro.workloads.generators import exact_queries, uniform_keys

EXPECTATION = (
    "per-node insert load ≈ constant across levels; per-node search load "
    "slightly higher at the leaves than at the root (no root hot-spot)"
)


def mid_size(scale: ExperimentScale) -> int:
    """A mid-size network: the per-level profile is what matters here, and
    the routed-and-balanced loading this experiment requires (see
    build_baton_equalized) is the costliest builder in the suite."""
    return scale.sizes[len(scale.sizes) // 2]


def grid_cell(
    n_peers: int, seed: int, data_per_node: int, n_queries: int
) -> Dict[str, Counter]:
    """One membership sequence: measured insert + search streams."""
    loaded = loaded_keys(n_peers, data_per_node, seed)
    net = build_baton_equalized(n_peers, seed, data_per_node)
    # Reset traffic counters: only the measured streams below count.
    from repro.net.bus import TrafficStats

    net.bus.stats = TrafficStats()
    level_nodes: Counter = Counter()
    for peer in net.peers.values():
        level_nodes[peer.position.level] += 1
    inserts = uniform_keys(n_queries * 5, seed=seed + 11)
    for key in inserts:
        net.insert(key)
    for key in exact_queries(loaded, n_queries * 5, seed=seed + 13):
        net.search_exact(key)
    return {
        "level_nodes": level_nodes,
        "insert_load": Counter(net.bus.stats.level_load(MsgType.INSERT)),
        "search_load": Counter(net.bus.stats.level_load(MsgType.SEARCH)),
    }


def cells(scale: ExperimentScale) -> List[Cell]:
    return [
        cell(
            grid_cell,
            group="fig8f",
            n_peers=mid_size(scale),
            seed=seed,
            data_per_node=scale.data_per_node,
            n_queries=scale.n_queries,
        )
        for seed in scale.seeds
    ]


def assemble(
    scale: ExperimentScale, outputs: List[Dict[str, Counter]]
) -> ExperimentResult:
    n_peers = mid_size(scale)
    result = ExperimentResult(
        figure="Fig 8f",
        title=f"Access load by tree level (N={n_peers})",
        columns=["level", "nodes", "insert_per_node", "search_per_node"],
        expectation=EXPECTATION,
    )
    insert_load: Counter = Counter()
    search_load: Counter = Counter()
    level_nodes: Counter = Counter()
    for out in outputs:
        level_nodes.update(out["level_nodes"])
        insert_load.update(out["insert_load"])
        search_load.update(out["search_load"])
    for level in sorted(level_nodes):
        nodes = level_nodes[level]
        result.add_row(
            level=level,
            nodes=nodes // len(scale.seeds),
            insert_per_node=insert_load[level] / nodes,
            search_per_node=search_load[level] / nodes,
        )
    result.notes.append(
        "loads are messages handled per node at that level, averaged over "
        f"{len(scale.seeds)} membership sequences"
    )
    return result


def run(
    scale: Optional[ExperimentScale] = None, jobs: int = 1
) -> ExperimentResult:
    scale = scale or default_scale()
    return assemble(scale, run_cells(cells(scale), jobs=jobs))


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
