"""Figure 8(f): access load of nodes at different tree levels.

Paper's reading: the hallmark result — BATON does *not* overload the root.
Insert load is roughly constant across levels, and search load is slightly
*higher* at the leaves than at the root, because the exact-match algorithm
routes sideways and downward and involves upper levels only when the answer
lives there.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton_equalized,
    default_scale,
    loaded_keys,
)
from repro.net.message import MsgType
from repro.workloads.generators import exact_queries, uniform_keys

EXPECTATION = (
    "per-node insert load ≈ constant across levels; per-node search load "
    "slightly higher at the leaves than at the root (no root hot-spot)"
)


def run(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    scale = scale or default_scale()
    # A mid-size network: the per-level profile is what matters here, and
    # the routed-and-balanced loading this experiment requires (see
    # build_baton_equalized) is the costliest builder in the suite.
    n_peers = scale.sizes[len(scale.sizes) // 2]
    result = ExperimentResult(
        figure="Fig 8f",
        title=f"Access load by tree level (N={n_peers})",
        columns=["level", "nodes", "insert_per_node", "search_per_node"],
        expectation=EXPECTATION,
    )
    insert_load: Counter = Counter()
    search_load: Counter = Counter()
    level_nodes: Counter = Counter()
    for seed in scale.seeds:
        loaded = loaded_keys(n_peers, scale.data_per_node, seed)
        net = build_baton_equalized(n_peers, seed, scale.data_per_node)
        # Reset traffic counters: only the measured streams below count.
        from repro.net.bus import TrafficStats

        net.bus.stats = TrafficStats()
        for peer in net.peers.values():
            level_nodes[peer.position.level] += 1
        inserts = uniform_keys(scale.n_queries * 5, seed=seed + 11)
        for key in inserts:
            net.insert(key)
        for key in exact_queries(loaded, scale.n_queries * 5, seed=seed + 13):
            net.search_exact(key)
        for level, count in net.bus.stats.level_load(MsgType.INSERT).items():
            insert_load[level] += count
        for level, count in net.bus.stats.level_load(MsgType.SEARCH).items():
            search_load[level] += count
    for level in sorted(level_nodes):
        nodes = level_nodes[level]
        result.add_row(
            level=level,
            nodes=nodes // len(scale.seeds),
            insert_per_node=insert_load[level] / nodes,
            search_per_node=search_load[level] / nodes,
        )
    result.notes.append(
        "loads are messages handled per node at that level, averaged over "
        f"{len(scale.seeds)} membership sequences"
    )
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
