"""Post-hoc analysis of traffic: breakdowns, distributions, sparklines.

Used by EXPERIMENTS.md's narrative and by anyone poking at a network in a
REPL: where do an operation's messages go, how is load spread over peers,
what does a distribution look like without leaving the terminal.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.net.bus import Trace
from repro.net.message import MsgType


@dataclass
class TypeBreakdown:
    """Message counts by category for a set of traces."""

    total: int
    by_type: Dict[str, int]

    def to_text(self) -> str:
        parts = [f"total={self.total}"]
        for name, count in sorted(self.by_type.items(), key=lambda kv: -kv[1]):
            parts.append(f"{name}={count}")
        return "  ".join(parts)


def breakdown(traces: Iterable[Trace]) -> TypeBreakdown:
    """Aggregate message-type counts over many operation traces."""
    counter: Counter = Counter()
    total = 0
    for trace in traces:
        total += trace.total
        for mtype, count in trace.by_type.items():
            counter[mtype.value] += count
    return TypeBreakdown(total=total, by_type=dict(counter))


@dataclass
class DistributionSummary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    def to_text(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} p50={self.p50:.2f} "
            f"p95={self.p95:.2f} max={self.maximum:.2f}"
        )


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Summary statistics (zeros for an empty sample)."""
    if not values:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(values)
    return DistributionSummary(
        count=len(ordered),
        mean=statistics.fmean(ordered),
        p50=ordered[len(ordered) // 2],
        p95=ordered[min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))],
        maximum=ordered[-1],
    )


_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A coarse character sparkline of a series (resampled to ``width``)."""
    if not values:
        return ""
    resampled: List[float] = []
    for i in range(min(width, len(values))):
        lo = i * len(values) // min(width, len(values))
        hi = max(lo + 1, (i + 1) * len(values) // min(width, len(values)))
        resampled.append(sum(values[lo:hi]) / (hi - lo))
    peak = max(resampled)
    if peak <= 0:
        return _SPARK_GLYPHS[0] * len(resampled)
    return "".join(
        _SPARK_GLYPHS[min(len(_SPARK_GLYPHS) - 1, int(v / peak * (len(_SPARK_GLYPHS) - 1)))]
        for v in resampled
    )


def histogram_text(values: Sequence[int], bucket_edges: Sequence[int]) -> str:
    """ASCII histogram with explicit bucket edges (upper bounds)."""
    if not values:
        return "(no samples)"
    buckets = [0] * (len(bucket_edges) + 1)
    for value in values:
        for index, edge in enumerate(bucket_edges):
            if value <= edge:
                buckets[index] += 1
                break
        else:
            buckets[-1] += 1
    widest = max(buckets) or 1
    lines = []
    lower = None
    for index, count in enumerate(buckets):
        if index < len(bucket_edges):
            label = (
                f"<= {bucket_edges[index]}"
                if lower is None
                else f"{lower + 1}-{bucket_edges[index]}"
            )
            lower = bucket_edges[index]
        else:
            label = f"> {bucket_edges[-1]}"
        bar = "#" * max(0, round(30 * count / widest))
        lines.append(f"{label:>10}: {count:>6} {bar}")
    return "\n".join(lines)
