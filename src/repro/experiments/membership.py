"""Shared measurement of join/leave costs across the three systems.

Figures 8(a) and 8(b) read different halves of the same trials: (a) the
messages spent *finding* the join position or the replacement node, (b) the
messages spent *updating routing state* afterwards.  Run the trials once,
report both.

Each (system, size, seed) point is one pure cell
(:func:`membership_cell`), so the suite scheduler can fan the grid out
over a process pool (see ``experiments/parallel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.experiments.harness import (
    ExperimentScale,
    build_baton,
    build_chord,
    build_multiway,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells


@dataclass
class MembershipCosts:
    """Average message counts for one (system, size, seed) cell."""

    system: str
    n_peers: int
    seed: int
    join_find: float
    join_update: float
    leave_find: float
    leave_update: float


def membership_cell(
    system: str, n_peers: int, seed: int, n_trials: int
) -> MembershipCosts:
    """One (system, size, seed) grid point: n_trials joins, then leaves."""
    builders: dict[str, Callable] = {
        "baton": build_baton,
        "chord": build_chord,
        "multiway": build_multiway,
    }
    net = builders[system](n_peers, seed, data_per_node=0)
    join_find: List[int] = []
    join_update: List[int] = []
    leave_find: List[int] = []
    leave_update: List[int] = []
    for _ in range(n_trials):
        result = net.join()
        join_find.append(result.find_trace.total)
        join_update.append(result.update_trace.total)
    for _ in range(n_trials):
        if system == "baton":
            victim = net.random_peer_address()
        else:
            victim = net.random_node_address()
        result = net.leave(victim)
        leave_find.append(result.find_trace.total)
        leave_update.append(result.update_trace.total)
    return MembershipCosts(
        system=system,
        n_peers=n_peers,
        seed=seed,
        join_find=mean(join_find),
        join_update=mean(join_update),
        leave_find=mean(leave_find),
        leave_update=mean(leave_update),
    )


def cells(
    scale: ExperimentScale,
    systems: tuple[str, ...] = ("baton", "chord", "multiway"),
) -> List[Cell]:
    """The membership grid as schedulable cells."""
    return [
        cell(
            membership_cell,
            group="membership",
            system=system,
            n_peers=n_peers,
            seed=seed,
            n_trials=scale.n_trials,
        )
        for system in systems
        for n_peers in scale.sizes
        for seed in scale.seeds
    ]


def measure_membership(
    scale: ExperimentScale,
    systems: tuple[str, ...] = ("baton", "chord", "multiway"),
    jobs: int = 1,
) -> List[MembershipCosts]:
    """Run join/leave trials for every (system, size, seed) cell."""
    return run_cells(cells(scale, systems), jobs=jobs)


def aggregate(
    cells: List[MembershipCosts], system: str, n_peers: int
) -> MembershipCosts:
    """Average the per-seed cells of one (system, size) point."""
    group = [c for c in cells if c.system == system and c.n_peers == n_peers]
    return MembershipCosts(
        system=system,
        n_peers=n_peers,
        seed=-1,
        join_find=mean([c.join_find for c in group]),
        join_update=mean([c.join_update for c in group]),
        leave_find=mean([c.leave_find for c in group]),
        leave_update=mean([c.leave_update for c in group]),
    )
