"""Durability under concurrent churn: keys lost vs. maintenance spent.

The paper's fault-tolerance story (§IV) restores *routing* after a failure
but treats the dead peer's data as out of scope; the adjacent-replica
extension (:mod:`repro.core.replication`, DESIGN.md "Durability contract")
closes that gap.  D3-Tree (Sourla et al.) argues durability under churn
should be *measured*, not asserted — so this experiment crashes peers while
queries and inserts are in flight and counts what actually survives.

For each (churn intensity, maintenance interval) cell, a replicated BATON
network runs the concurrent workload with every departure an abrupt crash;
crashes are detected and repaired in-window (``repair_delay``), the
maintenance sweep reconciles links *and* re-anchors replicas, and every
maintenance message crosses a priced link, so the overhead column is real
traffic, not bookkeeping.  Reported per cell:

* ``keys_lost`` — keys present after loading (plus applied inserts) that
  no live peer stores once the run drains and repairs finish;
* ``recovery_p50`` / ``recovery_max`` — crash-to-repaired latency of
  in-window repairs, including the detection delay and the sized
  replica-pull hops;
* ``reconcile_msgs`` / ``replica_msgs`` — the maintenance traffic spent to
  earn that durability.

Expected shape: with replication off, every crash loses its store
(``keys_lost`` grows with churn).  With replication on, serialized crashes
lose nothing; under concurrency a small residue survives only when crashes
race the refresh interval (a mirror dies with its holder before
re-anchoring, or a stale mirror is filtered at restore), so ``keys_lost``
falls as the maintenance interval shrinks — while ``replica_msgs`` rises.
That staleness-vs-maintenance-traffic trade-off is the measurement.

The ``mode`` column separates failure regimes.  ``independent`` rows crash
peers one at a time (Poisson churn, oracle detection after
``repair_delay``).  The ``region_outage`` row is the correlated case: every
peer in one :class:`~repro.sim.topology.ClusteredTopology` region dies at
once and the only detection path is the heartbeat liveness monitor — no
oracle — so its recovery columns report the probe-measured outage (strike
to the first sustained streak of answered queries, detection latency
included) rather than per-crash repair latency.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from repro import overlays
from repro.core.network import LocalityConfig
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    build_baton,
    default_scale,
    loaded_keys,
    mean,
)
from repro.experiments.parallel import Cell, cell, run_cells
from repro.sim.latency import ExponentialLatency
from repro.sim.topology import ClusteredTopology
from repro.util.rng import SeededRng, derive_seed
from repro.workloads.chaos import RegionOutage
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload

EXPECTATION = (
    "replication=off loses every crashed peer's keys; replication=on loses "
    "zero keys when crashes are repaired without racing churn and only a "
    "small residue under concurrency (crashes racing the refresh window); "
    "shrinking the maintenance interval trades replica/reconcile messages "
    "for fewer lost keys and lower recovery latency; the correlated "
    "region_outage row survives on replication plus monitor-driven repair "
    "alone, paying its recovery time in heartbeat detection latency; the "
    "region_outage+diverse row anchors mirrors across regions so the "
    "outage never takes both copies — adjacent-placement losses vanish"
)

CHURN_RATES = (0.5, 2.0)
MAINTENANCE_INTERVALS = (0.0, 4.0, 16.0)
QUERY_RATE = 4.0
INSERT_RATE = 0.5
REPAIR_DELAY = 2.0
FAIL_FRACTION = 1.0
OUTAGE_REGIONS = 4


def cells(
    scale: ExperimentScale,
    churn_rates: tuple[float, ...] = CHURN_RATES,
    maintenance_intervals: tuple[float, ...] = MAINTENANCE_INTERVALS,
    n_peers: Optional[int] = None,
    include_baseline: bool = True,
    include_correlated: bool = True,
) -> List[Cell]:
    if n_peers is None:
        n_peers = scale.sizes[0]
    duration = scale.n_queries / QUERY_RATE
    plan: List[Cell] = []
    modes = [True, False] if include_baseline else [True]
    for replication in modes:
        intervals = maintenance_intervals if replication else (0.0,)
        for churn_rate in churn_rates:
            for interval in intervals:
                for seed in scale.seeds:
                    plan.append(
                        cell(
                            _one_run,
                            group="durability",
                            n_peers=n_peers,
                            seed=seed,
                            data_per_node=scale.data_per_node,
                            churn_rate=churn_rate,
                            maintenance_interval=interval,
                            duration=duration,
                            replication=replication,
                        )
                    )
    if include_correlated:
        interval = next(
            (i for i in maintenance_intervals if i > 0),
            MAINTENANCE_INTERVALS[1],
        )
        for diverse in (False, True):
            for seed in scale.seeds:
                plan.append(
                    cell(
                        _correlated_run,
                        group="durability",
                        n_peers=n_peers,
                        seed=seed,
                        data_per_node=scale.data_per_node,
                        maintenance_interval=interval,
                        replica_diversity=diverse,
                    )
                )
    return plan


def assemble(
    scale: ExperimentScale,
    outputs: List[dict],
    churn_rates: tuple[float, ...] = CHURN_RATES,
    maintenance_intervals: tuple[float, ...] = MAINTENANCE_INTERVALS,
    n_peers: Optional[int] = None,
    include_baseline: bool = True,
    include_correlated: bool = True,
) -> ExperimentResult:
    """One row per (replication, churn rate, maintenance interval)."""
    if n_peers is None:
        n_peers = scale.sizes[0]
    result = ExperimentResult(
        figure="Durability",
        title=(
            f"Keys lost vs. maintenance traffic under crash churn "
            f"(N={n_peers}, fail fraction {FAIL_FRACTION}, "
            f"repair delay {REPAIR_DELAY})"
        ),
        columns=[
            "mode",
            "replication",
            "churn_rate",
            "interval",
            "crashes",
            "repairs",
            "keys_lost",
            "keys_recovered",
            "recovery_p50",
            "recovery_max",
            "reconcile_msgs",
            "replica_msgs",
            "success",
        ],
        expectation=EXPECTATION,
    )
    per_point = len(scale.seeds)
    index = 0
    modes = [True, False] if include_baseline else [True]
    for replication in modes:
        intervals = maintenance_intervals if replication else (0.0,)
        for churn_rate in churn_rates:
            for interval in intervals:
                group = outputs[index : index + per_point]
                index += per_point
                result.add_row(
                    mode="independent",
                    replication=int(replication),
                    churn_rate=churn_rate,
                    interval=interval,
                    crashes=sum(c["crashes"] for c in group),
                    repairs=sum(c["repairs"] for c in group),
                    keys_lost=sum(c["keys_lost"] for c in group),
                    keys_recovered=sum(c["keys_recovered"] for c in group),
                    recovery_p50=mean([c["recovery_p50"] for c in group]),
                    recovery_max=max(c["recovery_max"] for c in group),
                    reconcile_msgs=sum(c["reconcile_msgs"] for c in group),
                    replica_msgs=sum(c["replica_msgs"] for c in group),
                    success=mean([c["success"] for c in group]),
                )
    if include_correlated:
        interval = next(
            (i for i in maintenance_intervals if i > 0),
            MAINTENANCE_INTERVALS[1],
        )
        for diverse in (False, True):
            group = outputs[index : index + per_point]
            index += per_point
            recoveries = [c["recover"] for c in group if c["recover"] >= 0]
            result.add_row(
                mode="region_outage+diverse" if diverse else "region_outage",
                replication=1,
                churn_rate=0.0,
                interval=interval,
                crashes=sum(c["crashes"] for c in group),
                repairs=sum(c["repairs"] for c in group),
                keys_lost=sum(c["keys_lost"] for c in group),
                keys_recovered=sum(c["keys_recovered"] for c in group),
                recovery_p50=mean(recoveries) if recoveries else -1.0,
                recovery_max=max(recoveries) if recoveries else -1.0,
                reconcile_msgs=sum(c["reconcile_msgs"] for c in group),
                replica_msgs=sum(c["replica_msgs"] for c in group),
                success=mean([c["success"] for c in group]),
            )
    return result


def run(
    scale: Optional[ExperimentScale] = None,
    churn_rates: tuple[float, ...] = CHURN_RATES,
    maintenance_intervals: tuple[float, ...] = MAINTENANCE_INTERVALS,
    n_peers: Optional[int] = None,
    include_baseline: bool = True,
    include_correlated: bool = True,
    jobs: int = 1,
) -> ExperimentResult:
    scale = scale or default_scale()
    outputs = run_cells(
        cells(
            scale,
            churn_rates,
            maintenance_intervals,
            n_peers,
            include_baseline,
            include_correlated,
        ),
        jobs=jobs,
    )
    return assemble(
        scale,
        outputs,
        churn_rates,
        maintenance_intervals,
        n_peers,
        include_baseline,
        include_correlated,
    )


def _stored_multiset(net) -> Counter:
    counter: Counter = Counter()
    for peer in net.peers.values():
        counter.update(peer.store)
    return counter


def _one_run(
    n_peers: int,
    seed: int,
    data_per_node: int,
    churn_rate: float,
    maintenance_interval: float,
    duration: float,
    replication: bool,
) -> dict:
    net = build_baton(n_peers, seed, data_per_node, replication=replication)
    if replication:
        net.refresh_replicas()  # anchor every mirror before the storm
    rng = SeededRng(derive_seed(seed, "durability"))
    anet = overlays.get("baton").wrap(
        net,
        latency=ExponentialLatency(mean=1.0, rng=rng.child("latency")),
        record_events=False,
        retain_ops=False,
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    before = _stored_multiset(net)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=churn_rate,
        query_rate=QUERY_RATE,
        insert_rate=INSERT_RATE,
        fail_fraction=FAIL_FRACTION,
        repair_delay=REPAIR_DELAY,
        maintenance_interval=maintenance_interval,
        min_peers=max(8, n_peers // 2),
    )
    report = run_concurrent_workload(
        anet, keys, config, seed=derive_seed(seed, "durability-driver")
    )
    expected = before + Counter(report.insert_keys_applied)
    keys_lost = sum((expected - _stored_multiset(net)).values())
    return {
        "crashes": report.fails_applied,
        "repairs": report.repairs_applied,
        "keys_lost": keys_lost,
        "keys_recovered": report.keys_recovered,
        "recovery_p50": report.recovery_latency_p50,
        "recovery_max": report.recovery_latency_max,
        "reconcile_msgs": report.reconcile_messages,
        "replica_msgs": report.replica_messages,
        "success": report.query_success_rate,
    }


def _correlated_run(
    n_peers: int,
    seed: int,
    data_per_node: int,
    maintenance_interval: float,
    replica_diversity: bool = False,
    insert_rate: float = INSERT_RATE,
) -> dict:
    """One region dies at once; only the liveness monitor notices.

    No background churn, so every lost key is attributable to the outage;
    no ``repair_delay`` oracle, so every in-window repair was earned by
    heartbeat suspicion.  ``recover`` is the scenario's probe-measured
    strike-to-service time (-1: never within the run).

    ``replica_diversity`` turns on region-diverse placement (locality
    extension): mirrors anchor across regions, so the outage can never
    take an owner and its replica together.  The anchoring refresh runs
    *after* the topology is installed — placement needs ``region_of``.
    """
    net = build_baton(
        n_peers,
        seed,
        data_per_node,
        replication=True,
        locality=LocalityConfig(replica_diversity=replica_diversity),
    )
    topology = ClusteredTopology(
        seed=derive_seed(seed, "durability-regions"), regions=OUTAGE_REGIONS
    )
    anet = overlays.get("baton").wrap(
        net, topology=topology, record_events=False, retain_ops=False
    )
    net.refresh_replicas()  # anchor every mirror before the storm
    duration = 30.0  # long enough for strike + detection + probe streak
    scenario = RegionOutage(
        strike_at=duration * 0.25, window_len=duration * 0.5
    )
    keys = loaded_keys(n_peers, data_per_node, seed)
    before = _stored_multiset(net)
    config = ConcurrentConfig(
        duration=duration,
        churn_rate=0.0,
        query_rate=QUERY_RATE,
        insert_rate=insert_rate,
        maintenance_interval=maintenance_interval,
        min_peers=8,
    )
    report = run_concurrent_workload(
        anet,
        keys,
        config,
        seed=derive_seed(seed, "durability-outage"),
        scenario=scenario,
    )
    expected = before + Counter(report.insert_keys_applied)
    keys_lost = sum((expected - _stored_multiset(net)).values())
    return {
        "crashes": report.fails_applied,
        "repairs": report.repairs_applied,
        "keys_lost": keys_lost,
        "keys_recovered": report.keys_recovered,
        "recover": (
            report.recover_time if report.recover_time is not None else -1.0
        ),
        "reconcile_msgs": report.reconcile_messages,
        "replica_msgs": report.replica_messages,
        "success": report.query_success_rate,
    }


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
