"""Figure 8(b): messages to update routing tables on join/leave.

Paper's reading: BATON needs O(log N) update messages (< 6·log N on join,
< 8·log N on leave-with-replacement) where Chord pays Θ(log² N) through
``update_others``; the multiway tree is cheapest of all — it barely keeps
any routing state, which is exactly why its searches cost so much (8d).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.harness import (
    ExperimentResult,
    ExperimentScale,
    default_scale,
)
from repro.experiments.membership import MembershipCosts, aggregate, measure_membership

EXPECTATION = (
    "BATON update ≈ O(log N), well below Chord's Θ(log² N); multiway lowest "
    "(few links to fix) at the price of expensive searches"
)


def run(
    scale: Optional[ExperimentScale] = None,
    cells: Optional[List[MembershipCosts]] = None,
) -> ExperimentResult:
    scale = scale or default_scale()
    cells = cells if cells is not None else measure_membership(scale)
    result = ExperimentResult(
        figure="Fig 8b",
        title="Updating routing tables on join/leave (avg messages)",
        columns=["system", "N", "join_update", "leave_update"],
        expectation=EXPECTATION,
    )
    for system in ("baton", "chord", "multiway"):
        for n_peers in scale.sizes:
            cell = aggregate(cells, system, n_peers)
            result.add_row(
                system=system,
                N=n_peers,
                join_update=cell.join_update,
                leave_update=cell.leave_update,
            )
    return result


def main() -> ExperimentResult:
    result = run()
    print(result.to_text())
    return result


if __name__ == "__main__":
    main()
