"""Bounded-memory streaming statistics for large workload runs.

The concurrent workload driver used to keep every operation's latency in a
list and sort it at the end — fine at N=1000, a real memory tax at the
paper's N=10k with long windows (hundreds of thousands of floats held for
the whole run, plus their futures pinned by the lists).  This module
provides the replacement: :class:`StreamingQuantiles` accumulates samples
into logarithmically spaced bins, so memory is O(bins) regardless of run
length and every percentile query is a single bin walk.

Accuracy: with the default 64 bins per decade the relative bin width is
``10^(1/64) - 1 ≈ 3.7%`` — far below the run-to-run noise of the
experiments that consume these numbers — and the estimator is exact for
the minimum, maximum, count and mean.  Determinism: the accumulator is
pure arithmetic over the sample stream, so two identical runs report
identical percentiles (the property the workload replay tests pin).
"""

from __future__ import annotations

import math
from typing import List


class StreamingQuantiles:
    """Log-binned percentile accumulator with O(bins) memory.

    ``lo`` and ``hi`` bound the binned resolution range: samples below
    ``lo`` (including zeros and negatives) land in the first bin and
    samples above ``hi`` in the last, both still clamped exactly by the
    tracked min/max.  Quantiles use the nearest-rank convention, matching
    :func:`repro.workloads.concurrent.percentile` on list inputs.
    """

    __slots__ = ("_lo", "_scale", "_counts", "count", "total", "min", "max")

    def __init__(
        self,
        lo: float = 1e-3,
        hi: float = 1e6,
        bins_per_decade: int = 64,
    ):
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if bins_per_decade < 1:
            raise ValueError("need at least one bin per decade")
        self._lo = lo
        self._scale = bins_per_decade / math.log(10.0)
        n_bins = int(math.log(hi / lo) * self._scale) + 2
        self._counts: List[int] = [0] * n_bins
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Accumulate one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self._lo:
            index = 0
        else:
            index = int(math.log(value / self._lo) * self._scale) + 1
            last = len(self._counts) - 1
            if index > last:
                index = last
        self._counts[index] += 1

    @property
    def mean(self) -> float:
        """Exact arithmetic mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (0.0 when empty).

        Returns the geometric midpoint of the bin holding the ``ceil(q*n)``-th
        order statistic, clamped to the exact observed [min, max].
        """
        if self.count == 0:
            return 0.0
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        seen = 0
        for index, bin_count in enumerate(self._counts):
            seen += bin_count
            if seen >= rank:
                if index == 0:
                    # The underflow bin covers (-inf, lo]; its only exact
                    # representative is the observed minimum.
                    return self.min
                if index == len(self._counts) - 1:
                    # Overflow bin, [hi, inf): represent by the maximum.
                    return self.max
                value = self._lo * math.exp((index - 0.5) / self._scale)
                return min(self.max, max(self.min, value))
        return self.max  # pragma: no cover - rank <= count guarantees a hit
