"""Exception hierarchy for the BATON reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator with one ``except`` clause while
still distinguishing the interesting cases.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class NetworkEmptyError(ReproError):
    """An operation needed at least one live peer but the network has none."""


class PeerNotFoundError(ReproError):
    """A peer address was used that does not (or no longer does) exist.

    This is raised by the message bus when a sender targets an address with
    no live peer behind it.  Protocol code catches it to exercise the
    fault-tolerance paths (routing around failures).
    """

    def __init__(self, address: int):
        super().__init__(f"no live peer at address {address}")
        self.address = address


class ProtocolError(ReproError):
    """A protocol reached a state the paper's algorithms do not allow.

    Seeing this in a test means the implementation diverged from the paper
    (for example a join request that cannot make progress, or a replacement
    search that falls off the tree).
    """


class DeliveryError(ReproError):
    """At-least-once delivery gave up on a hop.

    Raised *into* an operation's step generator by the chaos-aware runtime
    when one hop exhausts its retry budget (every retransmission dropped,
    or the destination unreachable across a partition for the whole backoff
    schedule).  Generators may catch it to clean up partial state (a Chord
    join aborts its half-registered node, say) and must then re-raise: the
    operation's :class:`~repro.sim.runtime.OpFuture` reports FAILED with
    this error — a distinguishable outcome, never a hang.
    """

    def __init__(self, src, dst, attempts: int):
        super().__init__(
            f"delivery {src}->{dst} gave up after {attempts} attempt(s)"
        )
        self.src = src
        self.dst = dst
        self.attempts = attempts


class CapabilityError(ReproError):
    """An overlay was asked for an operation it does not implement.

    The :class:`~repro.overlays.Overlay` protocol has a small set of
    optional capabilities (abrupt failure, repair, load balancing); code
    that needs one should check ``supports()`` / the registry entry's
    ``capabilities`` instead of catching this.
    """


class InvariantViolation(ReproError):
    """The global structural checker found a broken invariant.

    Only raised from :mod:`repro.core.invariants`; protocols never raise it.
    The message names the invariant and the offending peer(s).
    """
