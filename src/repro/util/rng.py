"""Deterministic randomness for experiments.

Every stochastic component takes a seed (or a :class:`SeededRng`) so that a
whole experiment — network construction, workload, churn — replays exactly
from a single integer.  Sub-streams are derived with :func:`derive_seed` so
adding a new consumer does not perturb the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_right
from itertools import accumulate
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base: int, *labels: object) -> int:
    """Derive a child seed from ``base`` and a label path.

    The derivation hashes the label path so that independently labelled
    streams are statistically independent and stable across runs::

        derive_seed(42, "workload", "zipf")  # always the same value
    """
    digest = hashlib.sha256()
    digest.update(str(base).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "big")


class SeededRng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`.

    It exposes only the draws the library needs, which keeps call sites
    greppable and makes it easy to audit where randomness enters a run.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._random = random.Random(seed)
        # Hot draws are bound straight to the underlying generator: the
        # instance attribute shadows the documented method below, removing
        # one call frame from every draw (latency sampling and arrival
        # processes make millions of them in a 10k-peer run).  Behaviour
        # and signatures are identical.
        self.random = self._random.random
        self.randint = self._random.randint
        self.uniform = self._random.uniform
        self.expovariate = self._random.expovariate

    def child(self, *labels: object) -> "SeededRng":
        """Return an independent generator for a labelled sub-stream."""
        return SeededRng(derive_seed(self.seed, *labels))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements without replacement."""
        return self._random.sample(items, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""
        return self._random.uniform(low, high)

    def weighted_choice(self, items: Sequence[T], weights: Iterable[float]) -> T:
        """Choose one element with the given (unnormalised) weights.

        One cumulative pass plus a binary search — no copies of ``items``
        and no re-materialised weight list.  For repeated draws over the
        same weights, precompute with :meth:`weighted_chooser` instead.
        """
        cumulative = list(accumulate(weights))
        if len(cumulative) != len(items):
            raise ValueError("items and weights must have the same length")
        total = cumulative[-1]
        if total <= 0:
            raise ValueError("total weight must be positive")
        index = bisect_right(cumulative, self._random.random() * total)
        return items[min(index, len(items) - 1)]

    def weighted_chooser(
        self, items: Sequence[T], weights: Iterable[float]
    ) -> Callable[[], T]:
        """A zero-argument sampler with the cumulative weights precomputed.

        Use this on hot paths (e.g. Zipfian rank draws) where
        :meth:`weighted_choice` would rebuild the cumulative table on every
        draw; each call of the returned function is one uniform draw plus
        one binary search.
        """
        frozen = list(items)
        cumulative = list(accumulate(weights))
        if len(cumulative) != len(frozen):
            raise ValueError("items and weights must have the same length")
        total = cumulative[-1]
        if total <= 0:
            raise ValueError("total weight must be positive")
        last = len(frozen) - 1
        rand = self._random.random

        def choose() -> T:
            return frozen[min(bisect_right(cumulative, rand() * total), last)]

        return choose
