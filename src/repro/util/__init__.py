"""Shared utilities: seeded RNG helpers and library-wide exceptions."""

from repro.util.errors import (
    ReproError,
    NetworkEmptyError,
    PeerNotFoundError,
    ProtocolError,
    InvariantViolation,
)
from repro.util.rng import SeededRng, derive_seed

__all__ = [
    "ReproError",
    "NetworkEmptyError",
    "PeerNotFoundError",
    "ProtocolError",
    "InvariantViolation",
    "SeededRng",
    "derive_seed",
]
