"""Driving message-step generators to completion.

The overlay protocols are written as *step generators*: plain Python
generators that perform one protocol step (one message exchange, with the
usual bus accounting) and then ``yield`` a :class:`~repro.sim.topology.Hop`
declaring which pair of peers the next message travels between.  The
synchronous facades run a generator to exhaustion with :func:`drive` — one
atomic operation, exactly the pre-generator behaviour; the yielded hops are
ignored — while the event-driven runtime (:mod:`repro.sim.runtime`) resumes
the same generator once per simulator event, turning each hop into a
per-link delay drawn from the run's :class:`~repro.sim.topology.Topology`.

Writing each protocol once and executing it under both regimes is what
guarantees the serialized-equivalence property the runtime tests pin down:
the two paths *cannot* diverge in message order because they are the same
code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.sim.topology import Hop

T = TypeVar("T")

#: A protocol step generator: yields one Hop (which link the next message
#: crosses) per network hop, returns the operation's result via
#: StopIteration.
MessageSteps = Generator["Hop", None, T]


def drive(steps: MessageSteps) -> T:
    """Run a step generator to completion synchronously; return its result."""
    while True:
        try:
            next(steps)
        except StopIteration as stop:
            return stop.value
