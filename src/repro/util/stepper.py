"""Driving message-step generators to completion.

The overlay protocols are written as *step generators*: plain Python
generators that perform one protocol step (one message exchange, with the
usual bus accounting) and then ``yield`` to mark a network hop.  The
synchronous facades run a generator to exhaustion with :func:`drive` — one
atomic operation, exactly the pre-generator behaviour — while the
event-driven runtime (:mod:`repro.sim.runtime`) resumes the same generator
once per simulator event, inserting a sampled latency at every yield.

Writing each protocol once and executing it under both regimes is what
guarantees the serialized-equivalence property the runtime tests pin down:
the two paths *cannot* diverge in message order because they are the same
code.
"""

from __future__ import annotations

from typing import Generator, TypeVar

T = TypeVar("T")

#: A protocol step generator: yields None once per network hop, returns the
#: operation's result via StopIteration.
MessageSteps = Generator[None, None, T]


def drive(steps: MessageSteps) -> T:
    """Run a step generator to completion synchronously; return its result."""
    while True:
        try:
            next(steps)
        except StopIteration as stop:
            return stop.value
