"""State held by one multiway-tree peer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.ranges import Range
from repro.core.storage import LocalStore
from repro.net.address import Address


@dataclass
class ChildLink:
    """A parent's view of one child: address plus the coverage it was given.

    ``coverage`` is the contiguous key interval handed over when the child
    was accepted; everything the child's subtree will ever manage stays
    inside it, which is what routing descends on.
    """

    address: Address
    coverage: Range


class MultiwayNode:
    """A peer in the multiway tree.

    Links are exactly the set reference [10] gives each peer: parent,
    children, and the same-level left/right neighbours (adjacent by key
    order, doubling as sibling links inside a parent).  There are no
    long-range tables — that is the point of the comparison.
    """

    def __init__(self, address: Address, level: int, own_range: Range):
        self.address = address
        self.level = level
        self.range = own_range
        #: The full interval this node's subtree is responsible for; fixed
        #: at placement time (own range splits shrink ``range``, not this).
        self.coverage = own_range
        self.store = LocalStore()
        self.parent: Optional[Address] = None
        self.children: List[ChildLink] = []
        self.left_neighbor: Optional[Address] = None
        self.right_neighbor: Optional[Address] = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def child_covering(self, key: int) -> Optional[ChildLink]:
        """The child whose coverage contains ``key``, if any."""
        for link in self.children:
            if link.coverage.contains(key):
                return link
        return None

    def child_link_to(self, address: Address) -> Optional[ChildLink]:
        for link in self.children:
            if link.address == address:
                return link
        return None

    def __repr__(self) -> str:
        return (
            f"MultiwayNode(addr={self.address}, level={self.level}, "
            f"range={self.range}, children={len(self.children)})"
        )
