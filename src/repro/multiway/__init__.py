"""Multiway-tree baseline (Liau et al., DBISP2P 2004 — reference [10]).

The second system the BATON paper compares against: a tree-structured
overlay with *unconstrained fan-out* where each peer links only to its
parent, its children, its siblings and its same-level neighbours — no
long-range sideways tables.  Consequences the evaluation exercises:

* **Join** is cheap when fan-out is generous (the contacted node usually
  accepts directly) and grows when requests must descend.
* **Leave** is expensive: a departing node gathers information from *all*
  its children to pick and promote a replacement (§V-A).
* **Search** hops link by link — parent, child or neighbour — so it pays
  long horizontal walks that BATON's 2^i tables skip (§V-B), and the tree
  is not height-balanced under skew (§II: it can degenerate toward a list).
"""

from repro.multiway.network import MultiwayConfig, MultiwayNetwork
from repro.multiway.node import MultiwayNode
from repro.multiway.runtime import AsyncMultiwayNetwork

__all__ = [
    "MultiwayNetwork",
    "MultiwayConfig",
    "MultiwayNode",
    "AsyncMultiwayNetwork",
]
