"""The multiway tree overlay: joins, expensive leaves, hop-by-hop search.

Message accounting matches the other two systems so the experiments can
read all three with the same harness, and the public operations return the
unified result types from :mod:`repro.core.results`.

As on the Chord side, the routing walks are written as *step generators*
(see :mod:`repro.util.stepper`): one :class:`~repro.sim.topology.Hop`
yielded per inter-node hop, naming the pair of nodes the message travels
between so the event-driven runtime can price it per link.  The
synchronous facade drives them atomically; the event-driven runtime
(:class:`repro.multiway.runtime.AsyncMultiwayNetwork`) schedules each
resumption on the simulator, so searches, joins and departures interleave
at hop granularity while sending the same message sequence as the
synchronous path.  Structural mutations (accepting a child, detaching a
leaf, transplanting a replacement) each run inside a single segment, so
the tree is consistent at every event boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.ranges import Range
from repro.core.results import (
    DataOpResult,
    JoinResult,
    LeaveResult,
    RangeSearchResult,
    SearchResult,
)
from repro.multiway.node import ChildLink, MultiwayNode
from repro.net.address import Address, AddressAllocator, AddressPoolDict
from repro.net.bus import MessageBus, Trace
from repro.net.message import MsgType
from repro.sim.topology import Hop
from repro.util.errors import NetworkEmptyError, PeerNotFoundError, ProtocolError
from repro.util.rng import SeededRng
from repro.util.stepper import MessageSteps, drive


@dataclass
class MultiwayConfig:
    """Tree-wide settings.

    ``fanout`` caps how many children a node accepts before forwarding a
    join downward.  Reference [10] places no constraint on fan-out; the
    BATON paper's discussion (§V-A) covers both regimes — generous fan-out
    makes joins cheap and leaves expensive, small fan-out the reverse —
    so the cap is a parameter here (an ablation knob for Figure 8(a)).
    """

    fanout: int = 6
    domain: Range = None  # type: ignore[assignment]
    split_policy: str = "median"

    def __post_init__(self) -> None:
        if self.domain is None:
            self.domain = Range.full_domain()
        if self.fanout < 2:
            raise ValueError("fanout must be at least 2")


#: Backwards-compatible alias: multiway range scans now return the unified
#: :class:`~repro.core.results.RangeSearchResult`.
MultiwayRangeResult = RangeSearchResult


class MultiwayNetwork:
    """A simulated multiway-tree overlay."""

    def __init__(self, config: Optional[MultiwayConfig] = None, seed: int = 0):
        self.config = config or MultiwayConfig()
        self.rng = SeededRng(seed)
        self.bus = MessageBus()
        self.alloc = AddressAllocator()
        self.nodes: Dict[Address, MultiwayNode] = AddressPoolDict()
        self.root: Optional[Address] = None

    # -- bookkeeping ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node(self, address: Address) -> MultiwayNode:
        """The live node at ``address`` (raises if departed/unknown)."""
        try:
            return self.nodes[address]
        except KeyError:
            raise PeerNotFoundError(address) from None

    def addresses(self) -> List[Address]:
        return list(self.nodes)

    def random_peer_address(self) -> Address:
        """A uniformly random live node (query/join entry points)."""
        if not self.nodes:
            raise NetworkEmptyError("tree has no nodes")
        return self.nodes.random_address(self.rng)

    # Historical spelling, kept for callers written against the old API.
    random_node_address = random_peer_address

    def new_trace(self, label: str) -> Trace:
        """An empty trace (for operations that turn out to be no-ops)."""
        return Trace(label=label)

    @classmethod
    def build(
        cls, n_nodes: int, seed: int = 0, config: Optional[MultiwayConfig] = None
    ) -> "MultiwayNetwork":
        if n_nodes < 1:
            raise ValueError("need at least one node")
        net = cls(config=config, seed=seed)
        net.bootstrap()
        for _ in range(n_nodes - 1):
            net.join()
        return net

    # -- construction ----------------------------------------------------------

    def bootstrap(self) -> Address:
        if self.nodes:
            raise ValueError("tree is already bootstrapped")
        node = MultiwayNode(self.alloc.allocate(), 0, self.config.domain)
        self.nodes[node.address] = node
        self.bus.register(node.address)
        self.root = node.address
        return node.address

    def join(self, via: Optional[Address] = None) -> JoinResult:
        """Descend from the contact node to a parent with spare fan-out."""
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("multiway.join.find") as find_trace:
            parent_address = drive(self.join_find_steps(entry))
        with self.bus.trace("multiway.join.update") as update_trace:
            child = self.accept_child(self.nodes[parent_address])
        return JoinResult(
            address=child.address,
            parent=parent_address,
            find_trace=find_trace,
            update_trace=update_trace,
        )

    def join_find_steps(self, entry: Address) -> MessageSteps:
        """Walk to a node with spare fan-out and a splittable range.

        The acceptance check and the return happen in the same segment, so
        a caller that accepts immediately sees exactly the state the check
        read — no other operation can run in between.
        """
        current = entry
        limit = self.size + 8
        for _ in range(limit):
            node = self.node(current)
            if len(node.children) < self.config.fanout and node.range.can_split:
                return current
            if node.children:
                next_hop = self.rng.choice(node.children).address
            elif node.parent is not None:
                next_hop = node.parent  # range too narrow to split: back up
            else:
                raise ProtocolError("multiway join found no splittable node")
            self.bus.send_typed(current, next_hop, MsgType.JOIN_FIND)
            yield Hop(current, next_hop)
            current = next_hop
        raise ProtocolError("multiway join did not find a parent")

    def can_accept_join(self, node: MultiwayNode) -> bool:
        """Whether ``node`` can take a child right now (fresh-state check)."""
        return len(node.children) < self.config.fanout and node.range.can_split

    def _split_pivot(self, node: MultiwayNode) -> int:
        if node.range.width < 2:
            raise ProtocolError(f"range {node.range} too narrow to split")
        if self.config.split_policy == "median":
            median = node.store.median()
            if median is not None and node.range.low < median < node.range.high:
                return median
        return node.range.midpoint()

    def accept_child(self, parent: MultiwayNode) -> MultiwayNode:
        """Hand the upper half of the parent's own range to a new child."""
        pivot = self._split_pivot(parent)
        parent_range, child_range = parent.range.split_at(pivot)
        moved = parent.store.split_at_or_above(pivot)
        parent.range = parent_range

        child = MultiwayNode(self.alloc.allocate(), parent.level + 1, child_range)
        child.store.extend(moved)
        child.parent = parent.address
        self.nodes[child.address] = child
        self.bus.register(child.address)
        self.bus.send_typed(
            parent.address, child.address, MsgType.JOIN_TRANSFER, keys=len(moved)
        )

        # Children stay ordered by coverage; the newcomer's coverage is the
        # range it was just handed.
        link = ChildLink(address=child.address, coverage=child_range)
        parent.children.append(link)
        parent.children.sort(key=lambda item: item.coverage.low)
        self._wire_neighbors(parent, child)
        return child

    # Historical private spelling.
    _accept_child = accept_child

    def _wire_neighbors(self, parent: MultiwayNode, child: MultiwayNode) -> None:
        """Splice the new child into its level's neighbour chain.

        The left neighbour is the previous child of this parent in coverage
        order, or the rightmost child of the parent's left neighbour — one
        extra message either way, matching [10]'s local link maintenance.
        """
        index = next(
            i for i, link in enumerate(parent.children) if link.address == child.address
        )
        left: Optional[Address] = None
        if index > 0:
            left = parent.children[index - 1].address
        elif parent.left_neighbor is not None:
            uncle = self.nodes.get(parent.left_neighbor)
            if uncle is not None and uncle.children:
                self.bus.send_typed(parent.address, uncle.address, MsgType.TABLE_UPDATE)
                left = uncle.children[-1].address
        if left is not None and left in self.nodes:
            # Splice into the doubly-linked level chain right after `left`.
            left_node = self.nodes[left]
            right = left_node.right_neighbor
            child.left_neighbor = left
            child.right_neighbor = right
            self.bus.send_typed(child.address, left, MsgType.TABLE_UPDATE)
            left_node.right_neighbor = child.address
            if right is not None and right in self.nodes:
                self.bus.send_typed(child.address, right, MsgType.TABLE_UPDATE)
                self.nodes[right].left_neighbor = child.address
            return
        right: Optional[Address] = None
        if index < len(parent.children) - 1:
            right = parent.children[index + 1].address
        elif parent.right_neighbor is not None:
            uncle = self.nodes.get(parent.right_neighbor)
            if uncle is not None and uncle.children:
                self.bus.send_typed(parent.address, uncle.address, MsgType.TABLE_UPDATE)
                right = uncle.children[0].address
        if right is not None and right in self.nodes:
            # Splice right before `right`.
            right_node = self.nodes[right]
            far_left = right_node.left_neighbor
            child.right_neighbor = right
            child.left_neighbor = far_left
            self.bus.send_typed(child.address, right, MsgType.TABLE_UPDATE)
            right_node.left_neighbor = child.address
            if far_left is not None and far_left in self.nodes:
                self.bus.send_typed(child.address, far_left, MsgType.TABLE_UPDATE)
                self.nodes[far_left].right_neighbor = child.address

    # -- departure ---------------------------------------------------------------

    def leave(self, address: Address) -> LeaveResult:
        """Graceful departure; §V-A's expensive multi-child consultation."""
        node = self.node(address)
        if self.size == 1:
            with self.bus.trace("multiway.leave.update") as update_trace:
                del self.nodes[address]
                self.bus.unregister(address)
                self.root = None
            return LeaveResult(
                departed=address,
                replacement=None,
                find_trace=Trace(label="multiway.leave.find"),
                update_trace=update_trace,
            )
        with self.bus.trace("multiway.leave.find") as find_trace:
            replacement_address = drive(self.replacement_steps(node))
        with self.bus.trace("multiway.leave.update") as update_trace:
            if replacement_address is None:
                self.detach_leaf(node)
                replacement = None
            else:
                replacement = self.nodes[replacement_address]
                self.detach_leaf(replacement)
                self.transplant(node, replacement)
        return LeaveResult(
            departed=address,
            replacement=replacement_address,
            find_trace=find_trace,
            update_trace=update_trace,
        )

    def replacement_steps(self, node: MultiwayNode) -> MessageSteps:
        """Descend to a leaf, querying *all* children at every level.

        This is the cost centre the paper calls out: each step costs one
        message per child (gathering their states) before one is chosen.
        Yields once per level descended.
        """
        if node.is_leaf:
            return None
        current = node
        limit = self.size + 8
        for _ in range(limit):
            best: Optional[MultiwayNode] = None
            for link in current.children:
                self.bus.send_typed(current.address, link.address, MsgType.LEAVE_FIND)
                candidate = self.node(link.address)
                if best is None or len(candidate.children) < len(best.children):
                    best = candidate
            if best is None:
                return current.address
            if best.is_leaf:
                return best.address
            yield Hop(current.address, best.address)
            current = best
        raise ProtocolError("multiway replacement walk did not terminate")

    # Historical private spelling (returns the replacement address).
    def _find_replacement_leaf(self, node: MultiwayNode) -> Optional[Address]:
        return drive(self.replacement_steps(node))

    def detach_leaf(self, leaf: MultiwayNode) -> Address:
        """Unhook a leaf; its interval flows to its in-order predecessor.
        Returns the absorber's address, so callers can price the bulk
        store handover on the right link (a root leaf raises instead —
        callers handle the single-node network before coming here).

        The parent's own range is always the *lowest* segment of its
        coverage, so the segment just below the leaf's interval exists
        inside the parent's subtree: either the parent itself (the leaf was
        the most recent hand-out) or a node deeper in a sibling subtree,
        reached by routing — whose coverage chain up to the parent must then
        be widened.  All of it costs counted messages, which is exactly the
        "leave is expensive" behaviour §V-A reports for this structure.
        """
        if leaf.parent is None:
            raise ProtocolError("cannot detach the root as a leaf")
        parent = self.nodes[leaf.parent]
        link = parent.child_link_to(leaf.address)
        parent.children.remove(link)

        if parent.range.high == leaf.coverage.low:
            absorber = parent
        else:
            absorber = self.nodes[
                drive(
                    self.route_steps(
                        parent.address, leaf.coverage.low - 1, MsgType.LEAVE_TRANSFER
                    )
                )
            ]
        self.bus.send_typed(
            leaf.address, absorber.address, MsgType.LEAVE_TRANSFER, keys=len(leaf.store)
        )
        absorber.store.extend(leaf.store.clear())
        absorber.range = absorber.range.merge(leaf.coverage)

        # Widen coverages (and the parents' child links) from the absorber
        # up to — but not including — the departing leaf's parent.
        current = absorber
        while current.address != parent.address:
            current.coverage = Range(
                current.coverage.low, max(current.coverage.high, leaf.coverage.high)
            )
            if current.parent is None:
                break
            holder = self.nodes[current.parent]
            holder_link = holder.child_link_to(current.address)
            if holder_link is not None:
                self.bus.send_typed(
                    current.address, holder.address, MsgType.TABLE_UPDATE
                )
                holder_link.coverage = current.coverage
            current = holder

        for side_address, point_right in (
            (leaf.left_neighbor, True),
            (leaf.right_neighbor, False),
        ):
            if side_address is None or side_address not in self.nodes:
                continue
            self.bus.send_typed(leaf.address, side_address, MsgType.LEAVE_TRANSFER)
            neighbor = self.nodes[side_address]
            if point_right:
                neighbor.right_neighbor = leaf.right_neighbor
            else:
                neighbor.left_neighbor = leaf.left_neighbor
        del self.nodes[leaf.address]
        self.bus.unregister(leaf.address)
        return absorber.address

    # Historical private spelling.
    _detach_leaf = detach_leaf

    def transplant(self, departing: MultiwayNode, replacement: MultiwayNode) -> None:
        """The replacement assumes the departing node's place and content."""
        self.nodes[replacement.address] = replacement
        self.bus.register(replacement.address)
        self.bus.send_typed(
            departing.address,
            replacement.address,
            MsgType.LEAVE_TRANSFER,
            keys=len(departing.store),
        )
        replacement.level = departing.level
        replacement.range = departing.range
        replacement.coverage = departing.coverage
        replacement.store = departing.store
        replacement.parent = departing.parent
        replacement.children = departing.children
        replacement.left_neighbor = departing.left_neighbor
        replacement.right_neighbor = departing.right_neighbor

        snapshot_children = list(replacement.children)
        if replacement.parent is not None and replacement.parent in self.nodes:
            parent = self.nodes[replacement.parent]
            link = parent.child_link_to(departing.address)
            if link is not None:
                self.bus.send_typed(
                    replacement.address, parent.address, MsgType.TABLE_UPDATE
                )
                link.address = replacement.address
        for link in snapshot_children:
            if link.address in self.nodes:
                self.bus.send_typed(
                    replacement.address, link.address, MsgType.TABLE_UPDATE
                )
                self.nodes[link.address].parent = replacement.address
        for side_address, point_right in (
            (replacement.left_neighbor, True),
            (replacement.right_neighbor, False),
        ):
            if side_address is None or side_address not in self.nodes:
                continue
            self.bus.send_typed(replacement.address, side_address, MsgType.TABLE_UPDATE)
            neighbor = self.nodes[side_address]
            if point_right:
                neighbor.right_neighbor = replacement.address
            else:
                neighbor.left_neighbor = replacement.address
        if self.root == departing.address:
            self.root = replacement.address
        del self.nodes[departing.address]
        self.bus.unregister(departing.address)

    # Historical private spelling.
    _transplant = transplant

    # -- search -------------------------------------------------------------------

    def route_steps(self, start: Address, key: int, mtype: MsgType) -> MessageSteps:
        """Hop link by link toward the owner of ``key`` (§V-B's cost).

        Same-level coverages are not contiguous — the interval between two
        neighbours may be managed by a shallower ancestor — so a sideways
        step that would bounce straight back instead climbs to the parent.
        """
        current = start
        previous: Optional[Address] = None
        limit = 4 * self.size + 32
        for _ in range(limit):
            node = self.node(current)
            if node.range.contains(key):
                return current
            next_hop: Optional[Address] = None
            if node.coverage.contains(key):
                child = node.child_covering(key)
                if child is not None:
                    next_hop = child.address
            elif key < node.coverage.low:
                next_hop = node.left_neighbor or node.parent
            else:
                next_hop = node.right_neighbor or node.parent
            if next_hop == previous or next_hop is None:
                next_hop = node.parent
            if next_hop is None:
                raise ProtocolError(f"multiway routing stuck at {node!r} for {key}")
            self.bus.send_typed(current, next_hop, mtype)
            yield Hop(current, next_hop)
            previous, current = current, next_hop
        raise ProtocolError(f"multiway search for {key} did not terminate")

    def search_exact(self, key: int, via: Optional[Address] = None) -> SearchResult:
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("multiway.search") as trace:
            owner = drive(self.route_steps(entry, key, MsgType.SEARCH))
            found = key in self.node(owner).store
        return SearchResult(found=found, owner=owner, trace=trace)

    def search_range(
        self, low: int, high: int, via: Optional[Address] = None
    ) -> RangeSearchResult:
        """Collect [low, high) by climbing to a covering node, then fanning
        out over every intersecting child subtree (one message per visit)."""
        if low >= high:
            raise ValueError(f"empty query range [{low}, {high})")
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("multiway.range") as trace:
            owners, keys, complete = drive(self.range_steps(entry, low, high))
        return RangeSearchResult(
            owners=owners, keys=keys, trace=trace, complete=complete
        )

    def range_steps(
        self, entry: Address, low: int, high: int
    ) -> MessageSteps:
        """Route to low's owner, climb to a covering ancestor, fan out.

        Returns ``(owners, keys, complete)``; a subtree that vanished under
        concurrent churn truncates the answer (``complete=False``) instead
        of failing the whole query.
        """
        first = yield from self.route_steps(entry, low, MsgType.RANGE_SEARCH)
        owners: List[Address] = []
        keys: List[int] = []
        complete = True
        current = self.node(first)
        # Climb until the subtree coverage spans the query (or root).
        while current.parent is not None and current.coverage.high < high:
            parent_address = current.parent
            try:
                self.bus.send_typed(
                    current.address, parent_address, MsgType.RANGE_SEARCH
                )
                parent = self.node(parent_address)
            except PeerNotFoundError:
                return owners, sorted(keys), False
            yield Hop(current.address, parent_address)
            current = parent
        # Each stack entry remembers which node sent the fan-out message, so
        # the hop to the next visited subtree is priced on the real link.
        stack: List[tuple[Address, Address]] = [(current.address, current.address)]
        query = Range(low, high)
        while stack:
            sender, address = stack.pop()
            node = self.nodes.get(address)
            if node is None:
                complete = False  # subtree vanished mid-scan: truncated
                continue
            owners.append(address)
            keys.extend(node.store.keys_in(low, high))
            for link in node.children:
                if link.coverage.overlaps(query):
                    try:
                        self.bus.send_typed(address, link.address, MsgType.RANGE_SEARCH)
                    except PeerNotFoundError:
                        complete = False
                        continue
                    stack.append((address, link.address))
            if stack:
                yield Hop(stack[-1][0], stack[-1][1])
        return owners, sorted(keys), complete

    # -- data ------------------------------------------------------------------------

    def insert(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("multiway.insert") as trace:
            owner = drive(self.route_for_update_steps(entry, key, MsgType.INSERT))
            self.node(owner).store.insert(key)
        return DataOpResult(applied=True, owner=owner, trace=trace)

    def delete(self, key: int, via: Optional[Address] = None) -> DataOpResult:
        entry = via if via is not None else self.random_peer_address()
        with self.bus.trace("multiway.delete") as trace:
            owner = drive(self.route_for_update_steps(entry, key, MsgType.DELETE))
            applied = self.node(owner).store.delete(key)
        return DataOpResult(applied=applied, owner=owner, trace=trace)

    def route_for_update_steps(
        self, start: Address, key: int, mtype: MsgType
    ) -> MessageSteps:
        """Route an update; out-of-domain keys expand the root's coverage."""
        if not self.config.domain.contains(key):
            root = self.node(self.root)
            if key < root.coverage.low or key >= root.coverage.high:
                root.coverage = root.coverage.extend_to_include(key)
                root.range = root.range.extend_to_include(key)
                return self.root
        return (yield from self.route_steps(start, key, mtype))

    def bulk_load(self, keys: List[int]) -> int:
        """Place keys at their owners without routed messages (untimed load)."""
        owners = sorted(self.nodes.values(), key=lambda n: n.range.low)
        bounds = [n.range.low for n in owners]
        import bisect

        placed = 0
        for key in keys:
            index = bisect.bisect_right(bounds, key) - 1
            if index < 0:
                continue
            owner = owners[index]
            if owner.range.contains(key):
                owner.store.insert(key)
                placed += 1
        return placed

    # -- diagnostics ---------------------------------------------------------------

    def depth(self) -> int:
        """Maximum node level plus one (tree height)."""
        return max(node.level for node in self.nodes.values()) + 1
