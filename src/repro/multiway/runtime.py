"""Event-driven multiway runtime: tree hops as scheduled simulator events.

:class:`AsyncMultiwayNetwork` drives a
:class:`~repro.multiway.network.MultiwayNetwork` through the shared
:class:`~repro.sim.runtime.AsyncOverlayRuntime` machinery, resuming the
network's own step generators one link hop at a time — parent, child or
neighbour, exactly the walks §V-B charges the baseline for — so multiway
traffic interleaves on the same clock as BATON and Chord.

Concurrency semantics (see :mod:`repro.multiway.network` for the
protocol-side guarantees):

* Structural mutations — accepting a child, detaching a leaf,
  transplanting a replacement — run in a single simulator event each, in
  the same segment as the check that authorised them, so the tree is
  consistent at every event boundary.
* A walk whose carrier vanishes (its node was transplanted away) retries
  through a fresh contact for joins, and re-walks for leaves, mirroring
  the BATON runtime's recovery; queries fail over to the client.
* Range scans truncate (``complete=False``) when an intersecting subtree
  vanishes mid-fan-out instead of failing the whole query.
"""

from __future__ import annotations

from repro.core.ranges import Range
from repro.core.results import JoinResult, LeaveResult
from repro.multiway.network import MultiwayNetwork
from repro.net.address import Address
from repro.net.message import MsgType
from repro.sim.runtime import AsyncOverlayRuntime, OpFuture, OpSteps
from repro.sim.topology import Hop
from repro.util.errors import PeerNotFoundError, ProtocolError


class AsyncMultiwayNetwork(AsyncOverlayRuntime):
    """Concurrent-operation facade over a :class:`MultiwayNetwork`."""

    overlay_name = "multiway"
    network_cls = MultiwayNetwork
    capabilities = frozenset()

    @property
    def domain(self) -> Range:
        return self.net.config.domain

    # -- hop generators -------------------------------------------------------
    # Queries and data ops come from the base class; the owner walk is the
    # link-by-link route (updates may expand the root's coverage).

    def _owner_steps(self, start: Address, key: int, mtype: MsgType):
        if mtype in (MsgType.INSERT, MsgType.DELETE):
            return self.net.route_for_update_steps(start, key, mtype)
        return self.net.route_steps(start, key, mtype)

    def _join_steps(self, future: OpFuture, start: Address) -> OpSteps:
        net = self.net
        yield Hop(None, start)  # the join request reaches its entry node
        current = start
        for _attempt in range(16):
            try:
                parent_address = yield from self._lift(net.join_find_steps(current))
            except PeerNotFoundError:
                # The walk's carrier vanished; re-enter somewhere live.
                current = net.random_peer_address()
                yield Hop(None, current)  # fresh client ingress
                continue
            # The acceptance check and the accept run in the same simulator
            # event (join_find_steps returns in the segment that verified
            # acceptability), so this re-check cannot lose a race — it only
            # guards the retry path's fresh entry.
            parent = net.nodes.get(parent_address)
            if parent is None:
                current = net.random_peer_address()
                yield Hop(None, current)
                continue
            if not net.can_accept_join(parent):
                current = parent_address
                yield Hop(current, current)  # local beat: keep walking
                continue
            child = net.accept_child(parent)
            return JoinResult(
                address=child.address,
                parent=parent_address,
                find_trace=future.trace,
                update_trace=net.new_trace("multiway.join.update"),
            )
        raise ProtocolError("multiway join kept losing acceptance races")

    def _leave_steps(self, future: OpFuture, address: Address) -> OpSteps:
        net = self.net
        yield Hop(None, address)  # the departure intent is announced
        for _attempt in range(8):
            departing = net.node(address)  # raises if the node already vanished
            if net.size == 1:
                del net.nodes[address]
                net.bus.unregister(address)
                net.root = None
                return self._leave_result(future, address, None)
            if departing.is_leaf:
                handover = len(departing.store)
                absorber = net.detach_leaf(departing)
                # The interval merge moves the leaf's whole store: a sized
                # bulk transfer on the leaf->absorber link (the structural
                # unhook above stays atomic).
                yield Hop(address, absorber, size=float(max(1, handover)))
                return self._leave_result(future, address, None)
            try:
                replacement_address = yield from self._lift(
                    net.replacement_steps(departing)
                )
            except PeerNotFoundError:
                yield Hop(address, address)  # a consulted child vanished; re-walk
                continue
            if net.nodes.get(address) is not departing:
                # Another operation transplanted us mid-walk; the next
                # attempt re-reads the node (and fails if it is gone).
                yield Hop(address, address)
                continue
            if replacement_address is None or replacement_address == address:
                yield Hop(address, address)
                continue
            replacement = net.nodes.get(replacement_address)
            if replacement is None or not replacement.is_leaf:
                yield Hop(address, address)  # lost the race; walk again
                continue
            repl_handover = len(replacement.store)
            handover = len(departing.store)
            repl_absorber = net.detach_leaf(replacement)
            net.transplant(departing, replacement)
            # Price the two bulk transfers the merge + transplant moved:
            # the replacement leaf's store into its absorber, then the
            # departing node's store onto the replacement.
            yield Hop(
                replacement_address,
                repl_absorber,
                size=float(max(1, repl_handover)),
            )
            yield Hop(address, replacement_address, size=float(max(1, handover)))
            return self._leave_result(future, address, replacement_address)
        raise ProtocolError(f"multiway leave of address {address} kept losing races")

    def _leave_result(
        self, future: OpFuture, address: Address, replacement
    ) -> LeaveResult:
        return LeaveResult(
            departed=address,
            replacement=replacement,
            find_trace=future.trace,
            update_trace=self.net.new_trace("multiway.leave.update"),
        )
