"""Typed messages exchanged between peers.

The paper's evaluation metric is the *number of passing messages*, broken
down by operation (join, leave, search, …).  Every hop in every protocol is
therefore represented as a :class:`Message` with a :class:`MsgType` category,
and is registered with the bus before the receiving peer acts on it.

The categories are deliberately semantic rather than system-specific so the
same accounting works for BATON, Chord and the multiway tree: a Chord lookup
hop and a BATON exact-match hop both count as :attr:`MsgType.SEARCH`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.net.address import Address


class MsgType(enum.Enum):
    """Semantic category of a message, used for traffic accounting."""

    # Members are singletons, so identity hashing is sound; the default
    # Enum hash goes through a Python-level __hash__ on every traffic
    # counter update, which adds up to real time across millions of
    # counted messages.
    __hash__ = object.__hash__

    #: Forwarding a JOIN request while locating the accepting node
    #: (Algorithm 1), or a Chord ``find_successor`` during join.
    JOIN_FIND = "join_find"
    #: Topology-aware join probe: the joiner's contact peer asks a candidate
    #: entry point for its neighbourhood coordinates (locality extension;
    #: see DESIGN.md "Locality contract").  The candidate's RESPONSE carries
    #: them back; both legs are priced like any other message.
    JOIN_PROBE = "join_probe"
    #: Range/content handover and link setup when a join is accepted.
    JOIN_TRANSFER = "join_transfer"
    #: Any routing-state maintenance: BATON sideways-table updates, Chord
    #: finger fixes, multiway child/neighbour updates, range-change notices.
    TABLE_UPDATE = "table_update"
    #: Forwarding a FINDREPLACEMENT request (Algorithm 2).
    LEAVE_FIND = "leave_find"
    #: Content/range handover and LEAVE notifications on departure.
    LEAVE_TRANSFER = "leave_transfer"
    #: Exact-match query forwarding.
    SEARCH = "search"
    #: Range-query forwarding and partial-answer expansion.
    RANGE_SEARCH = "range_search"
    #: Insert routing and execution.
    INSERT = "insert"
    #: Delete routing and execution.
    DELETE = "delete"
    #: Load-balancing coordination, probes and data migration.
    BALANCE = "balance"
    #: Node position shifts during network restructuring.
    RESTRUCTURE = "restructure"
    #: Failure detection reports and table regeneration during repair.
    REPAIR = "repair"
    #: Replies carrying requested information back to an asker.
    RESPONSE = "response"
    #: Replica maintenance (the data-durability extension; not in the
    #: paper, see DESIGN.md "Durability contract").
    REPLICATE = "replicate"
    #: Anti-entropy digest exchange during a ``reconcile()`` maintenance
    #: sweep (one message per peer per round — the modeled cost of the
    #: map-based link rebuild; see DESIGN.md "Durability contract").
    RECONCILE = "reconcile"
    #: Liveness-monitor probe to an adjacency neighbour (the chaos
    #: subsystem's failure detector; see DESIGN.md "Delivery contract").
    #: Probes to dead peers are counted before the bus raises, like any
    #: other send — detection traffic is real traffic.
    HEARTBEAT = "heartbeat"
    #: Range-multicast routing and fan-out delegation (the dissemination
    #: subsystem; see DESIGN.md "Dissemination contract").
    MULTICAST = "multicast"
    #: Subscription installation: the route + range walk that stores a
    #: subscription entry at every range owner.
    SUBSCRIBE = "subscribe"
    #: Insert notification pushed from a range owner to a subscriber,
    #: stamped with a dissemination id for exactly-once application.
    NOTIFY = "notify"


_message_ids = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """One inter-peer message.

    ``payload`` carries protocol-specific fields; it is free-form because the
    bus never interprets it — only the receiving peer's handler does.
    """

    src: Address
    dst: Address
    mtype: MsgType
    payload: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __str__(self) -> str:
        return f"{self.mtype.value}#{self.msg_id} {self.src}->{self.dst}"
