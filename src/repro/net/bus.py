"""The message bus: delivery bookkeeping and traffic accounting.

The bus is the single funnel through which every inter-peer hop passes.  It
does three jobs:

* **Liveness** — peers register on join and unregister on departure; failure
  experiments mark peers dead.  Sending to a dead or unknown address raises
  :class:`~repro.util.errors.PeerNotFoundError` *after* the attempt is
  counted, because the paper counts the wasted message too (the sender paid
  for it and must now route around the failure).
* **Global accounting** — totals by :class:`MsgType`, per receiving peer, and
  per tree level (for Figure 8(f)'s access-load-by-level plot; the overlay
  installs a resolver mapping an address to its current level).
* **Per-operation traces** — experiments wrap each operation in
  :meth:`MessageBus.trace`; all messages sent while a trace is open are
  attributed to it, so "average messages per exact-match query" is just the
  mean of trace totals.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.net.address import Address
from repro.net.message import Message, MsgType
from repro.util.errors import PeerNotFoundError


@dataclass
class Trace:
    """Message accounting for a single logical operation."""

    label: str
    total: int = 0
    by_type: Counter = field(default_factory=Counter)
    path: list[Address] = field(default_factory=list)

    def record(self, message: Message) -> None:
        """Attribute one message to this operation."""
        self.total += 1
        self.by_type[message.mtype] += 1
        self.path.append(message.dst)

    def count(self, *mtypes: MsgType) -> int:
        """Total messages of the given categories (all if none given)."""
        if not mtypes:
            return self.total
        return sum(self.by_type[mtype] for mtype in mtypes)


@dataclass
class TrafficStats:
    """Cumulative global traffic counters."""

    total: int = 0
    by_type: Counter = field(default_factory=Counter)
    per_peer: Counter = field(default_factory=Counter)
    per_level_by_type: Counter = field(default_factory=Counter)

    def record(self, message: Message, level: Optional[int]) -> None:
        self.total += 1
        self.by_type[message.mtype] += 1
        self.per_peer[message.dst] += 1
        if level is not None:
            self.per_level_by_type[(level, message.mtype)] += 1

    def level_load(self, mtype: MsgType) -> dict[int, int]:
        """Messages of one category received, grouped by tree level."""
        loads: dict[int, int] = {}
        for (level, kind), count in self.per_level_by_type.items():
            if kind is mtype:
                loads[level] = loads.get(level, 0) + count
        return loads


class MessageBus:
    """Registers peers, validates liveness and counts every message."""

    def __init__(self) -> None:
        self._alive: set[Address] = set()
        self.stats = TrafficStats()
        self._trace_stack: list[Trace] = []
        self._level_resolver: Optional[Callable[[Address], Optional[int]]] = None

    # -- liveness ---------------------------------------------------------

    def register(self, address: Address) -> None:
        """Declare a peer live (called when it joins the network)."""
        self._alive.add(address)

    def unregister(self, address: Address) -> None:
        """Remove a peer (graceful departure or permanent failure)."""
        self._alive.discard(address)

    def is_alive(self, address: Address) -> bool:
        """Whether a send to ``address`` would currently succeed."""
        return address in self._alive

    @property
    def live_count(self) -> int:
        """Number of currently registered peers."""
        return len(self._alive)

    # -- accounting hooks -------------------------------------------------

    def set_level_resolver(
        self, resolver: Optional[Callable[[Address], Optional[int]]]
    ) -> None:
        """Install a callback mapping an address to its current tree level.

        The overlay network owns the mapping; the bus only uses it to bucket
        per-level load for Figure 8(f).
        """
        self._level_resolver = resolver

    # -- sending ----------------------------------------------------------

    def send(self, message: Message) -> None:
        """Account for one message and validate that the target is live.

        Raises :class:`PeerNotFoundError` if the destination is dead or
        unknown.  The message is counted either way: an attempt to contact a
        failed peer still crossed the network.
        """
        level = self._level_resolver(message.dst) if self._level_resolver else None
        self.stats.record(message, level)
        for trace in self._trace_stack:
            trace.record(message)
        if message.dst not in self._alive:
            raise PeerNotFoundError(message.dst)

    def send_typed(
        self, src: Address, dst: Address, mtype: MsgType, **payload: object
    ) -> Message:
        """Convenience wrapper building and sending a :class:`Message`."""
        # ``payload`` is already a fresh dict built from the keywords; no
        # defensive copy needed.
        message = Message(src=src, dst=dst, mtype=mtype, payload=payload)
        self.send(message)
        return message

    # -- traces -----------------------------------------------------------

    @contextmanager
    def trace(self, label: str) -> Iterator[Trace]:
        """Open a per-operation trace; nested traces each see the traffic."""
        trace = Trace(label=label)
        self._trace_stack.append(trace)
        try:
            yield trace
        finally:
            self._trace_stack.pop()

    @contextmanager
    def activate(self, trace: Trace) -> Iterator[Trace]:
        """Attribute traffic to an *existing* trace for the duration.

        The event-driven runtime executes one operation as many separate
        simulator events; :meth:`trace`'s with-block scoping cannot span
        them, so each event step re-activates the operation's own trace.
        The trace accumulates across activations.
        """
        self._trace_stack.append(trace)
        try:
            yield trace
        finally:
            self._trace_stack.pop()

    def push_trace(self, trace: Trace) -> None:
        """Plain (non-contextmanager) spelling of :meth:`activate` entry.

        The runtime's per-hop scheduler calls this once per simulator
        event; the generator machinery of a ``with`` block is measurable
        overhead at that frequency, so the hot path pushes and pops
        directly (always in a try/finally).
        """
        self._trace_stack.append(trace)

    def pop_trace(self) -> None:
        """Undo the matching :meth:`push_trace`."""
        self._trace_stack.pop()
