"""Message-passing substrate shared by all three overlay implementations.

The substrate gives each peer a physical :data:`Address`, delivers typed
:class:`Message` objects between peers, and — crucially for reproducing the
paper — counts every message at the :class:`MessageBus`, tagged with a
:class:`MsgType` category and attributed to the receiving peer so the
experiments can report "number of passing messages" exactly as §V does.

Failure experiments mark peers dead at the bus: a send to a dead address
raises :class:`~repro.util.errors.PeerNotFoundError` *after* counting the
attempted message, and the caller must route around the failure.
"""

from repro.net.address import Address, AddressAllocator
from repro.net.message import Message, MsgType
from repro.net.bus import MessageBus, TrafficStats, Trace

__all__ = [
    "Address",
    "AddressAllocator",
    "Message",
    "MsgType",
    "MessageBus",
    "TrafficStats",
    "Trace",
]
