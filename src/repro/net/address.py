"""Physical peer addresses.

A peer's *physical id* in the paper is its IP address; the logical id is its
(level, number) position in the tree.  We model the physical id as a plain
integer handed out by :class:`AddressAllocator`, which never reuses values so
a stale link to a departed peer can be detected (the address resolves to
nothing) rather than silently hitting a recycled peer.
"""

from __future__ import annotations

from typing import NewType

Address = NewType("Address", int)
"""Opaque physical identifier of a peer (stands in for an IP address)."""


class AddressPoolDict(dict):
    """An address-keyed dict that keeps a flat key pool for O(1) draws.

    Overlay networks hand out query/join entry points uniformly at random;
    sorting (or even listing) the node dict per draw is O(N log N) and was
    the dominant per-event cost of the workload driver beyond N≈10k.  This
    dict mirrors its keys into a swap-remove pool so
    :meth:`random_address` is a single O(1) index, while all read traffic
    stays plain-dict fast.  Only item assignment and deletion are
    intercepted — the overlay networks mutate their node maps exclusively
    through those two operations.
    """

    __slots__ = ("_pool", "_pool_index")

    def __init__(self) -> None:
        super().__init__()
        self._pool: list[Address] = []
        self._pool_index: dict[Address, int] = {}

    def __setitem__(self, address: Address, node: object) -> None:
        if address not in self._pool_index:
            self._pool_index[address] = len(self._pool)
            self._pool.append(address)
        super().__setitem__(address, node)

    def __delitem__(self, address: Address) -> None:
        super().__delitem__(address)
        index = self._pool_index.pop(address)
        last = self._pool.pop()
        if last != address:
            self._pool[index] = last
            self._pool_index[last] = index

    def pop(self, *args):  # pragma: no cover - guard against silent desync
        raise NotImplementedError("use `del` so the draw pool stays in sync")

    def __reduce__(self):
        # The default dict-subclass reduce replays items through
        # __setitem__ before slot state exists, and would re-derive the
        # pool in dict order — but swap-remove deletions leave the pool
        # in its own order, and random_address draws index into it, so a
        # restored network must get the pool back *verbatim* to drive
        # identically to the original (see experiments/snapshot.py).
        return (_restore_pool_dict, (dict(self), list(self._pool)))

    def random_address(self, rng) -> Address:
        """A uniformly random live key (``rng`` needs ``randint``)."""
        return self._pool[rng.randint(0, len(self._pool) - 1)]


def _restore_pool_dict(items: dict, pool: list) -> "AddressPoolDict":
    """Rebuild an :class:`AddressPoolDict` with its draw pool intact."""
    restored = AddressPoolDict()
    dict.update(restored, items)
    restored._pool = pool
    restored._pool_index = {address: i for i, address in enumerate(pool)}
    return restored


class AddressAllocator:
    """Hands out unique, never-reused peer addresses."""

    def __init__(self, start: int = 1):
        if start < 0:
            raise ValueError("address space must start at a non-negative value")
        self._next = start

    def allocate(self) -> Address:
        """Return a fresh address, distinct from every earlier one."""
        address = Address(self._next)
        self._next += 1
        return address

    @property
    def allocated_count(self) -> int:
        """How many addresses have been handed out so far."""
        return self._next - 1
