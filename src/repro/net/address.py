"""Physical peer addresses.

A peer's *physical id* in the paper is its IP address; the logical id is its
(level, number) position in the tree.  We model the physical id as a plain
integer handed out by :class:`AddressAllocator`, which never reuses values so
a stale link to a departed peer can be detected (the address resolves to
nothing) rather than silently hitting a recycled peer.
"""

from __future__ import annotations

from typing import NewType

Address = NewType("Address", int)
"""Opaque physical identifier of a peer (stands in for an IP address)."""


class AddressAllocator:
    """Hands out unique, never-reused peer addresses."""

    def __init__(self, start: int = 1):
        if start < 0:
            raise ValueError("address space must start at a non-negative value")
        self._next = start

    def allocate(self) -> Address:
        """Return a fresh address, distinct from every earlier one."""
        address = Address(self._next)
        self._next += 1
        return address

    @property
    def allocated_count(self) -> int:
        """How many addresses have been handed out so far."""
        return self._next - 1
