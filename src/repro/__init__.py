"""BATON reproduction: a balanced tree overlay for peer-to-peer networks.

Reimplements Jagadish, Ooi, Rinard & Vu, *BATON: A Balanced Tree Structure
for Peer-to-Peer Networks* (VLDB 2005), together with the Chord and
multiway-tree baselines its evaluation compares against and the simulation
substrate the experiments run on.

Quickstart::

    from repro import BatonNetwork

    net = BatonNetwork.build(100, seed=7)
    net.insert(123_456)
    hit = net.search_exact(123_456)
    assert hit.found
    span = net.search_range(100_000, 200_000)

Concurrent traffic runs on the event-driven runtime::

    from repro import AsyncBatonNetwork

    anet = AsyncBatonNetwork.build(1000, seed=7)
    future = anet.submit_search_exact(123_456)
    anet.drain()
    assert future.succeeded

The Chord and multiway baselines speak the same :class:`~repro.overlays.Overlay`
protocol and run on the same runtime, selected through the registry::

    from repro import overlays

    for name in overlays.available():        # ['baton', 'chord', 'multiway']
        anet = overlays.get(name).build_async(1000, seed=7)
        anet.submit_search_range(100_000, 200_000)
        anet.drain()
"""

from repro.core import (
    BatonConfig,
    BatonNetwork,
    LoadBalanceConfig,
    Position,
    Range,
    check_invariants,
    tree_height,
)
from repro.sim import AsyncBatonNetwork, AsyncOverlayRuntime, OpFuture
from repro import overlays

__version__ = "1.0.0"

__all__ = [
    "BatonNetwork",
    "BatonConfig",
    "LoadBalanceConfig",
    "AsyncBatonNetwork",
    "AsyncOverlayRuntime",
    "OpFuture",
    "overlays",
    "Position",
    "Range",
    "check_invariants",
    "tree_height",
    "__version__",
]
