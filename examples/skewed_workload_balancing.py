"""Load balancing under a Zipfian workload (§IV-D).

A Zipf(1.0) insert stream hammers a narrow slice of the key space.  Without
balancing, the peers owning the hot range drown; with the paper's two-tier
scheme — adjacent shifts first, lightly-loaded-leaf recruitment with forced
restructuring when the neighbourhood is saturated — the hottest store stays
bounded at a small multiple of the mean.

Run::

    python examples/skewed_workload_balancing.py
"""

from __future__ import annotations

import statistics
from collections import Counter

from repro import BatonConfig, BatonNetwork, LoadBalanceConfig, check_invariants
from repro.workloads.generators import ZipfianKeys


def run_stream(balancing: bool, n_inserts: int) -> BatonNetwork:
    config = BatonConfig(
        balance=LoadBalanceConfig(capacity=60, enabled=balancing)
    )
    net = BatonNetwork.build(80, seed=3, config=config)
    gen = ZipfianKeys(theta=1.0, seed=17)
    for _ in range(n_inserts):
        net.insert(gen.draw())
    return net


def describe(label: str, net: BatonNetwork) -> None:
    sizes = [len(p.store) for p in net.peers.values()]
    print(f"{label}:")
    print(f"  peers={net.size}  total keys={sum(sizes)}")
    print(f"  store sizes: max={max(sizes)}  mean={statistics.fmean(sizes):.1f}  "
          f"p95={sorted(sizes)[int(0.95 * (len(sizes) - 1))]}")


def main() -> None:
    n_inserts = 6_000

    without = run_stream(balancing=False, n_inserts=n_inserts)
    describe("WITHOUT load balancing", without)

    with_balancing = run_stream(balancing=True, n_inserts=n_inserts)
    describe("WITH §IV-D load balancing", with_balancing)
    check_invariants(with_balancing)

    events = with_balancing.stats.balance_events
    kinds = Counter(e.kind for e in events)
    total_messages = sum(e.messages for e in events)
    print(f"balancing events: {dict(kinds)}; "
          f"{total_messages} messages total "
          f"({total_messages / n_inserts:.3f} per insert)")

    shifts = with_balancing.stats.restructure_shift_sizes
    if shifts:
        histogram = Counter(
            "1-2" if s <= 2 else "3-8" if s <= 8 else "9+" for s in shifts
        )
        print(f"forced-restructuring shift sizes (Fig 8h's shape): "
              f"{dict(histogram)}")

    hottest = max(len(p.store) for p in with_balancing.peers.values())
    unbalanced_hottest = max(len(p.store) for p in without.peers.values())
    print(f"hottest store: {unbalanced_hottest} keys unbalanced vs "
          f"{hottest} keys balanced")


if __name__ == "__main__":
    main()
