"""A distributed book catalog with range queries over publication dates.

The scenario the paper's introduction motivates: an ordered attribute
(here, publication timestamps encoded as integer keys) shared across many
small machines, where users ask both point queries ("is this edition
present?") and range queries ("everything published in the 1990s") — the
query type hash-based DHTs cannot serve.

Run::

    python examples/distributed_book_catalog.py
"""

from __future__ import annotations

from repro import BatonConfig, BatonNetwork, Range
from repro.util.rng import SeededRng

# Keys are dates encoded as YYYYMMDD integers; the catalog covers the
# twentieth and twenty-first centuries.
DOMAIN = Range(19_00_01_01, 21_00_01_01)


def publication_key(year: int, month: int, day: int) -> int:
    return year * 10_000 + month * 100 + day


def main() -> None:
    rng = SeededRng(2024)
    config = BatonConfig(domain=DOMAIN)

    # 64 library mirrors join the overlay; the catalog is loaded as the
    # network forms, so ranges split around the actual data.
    net = BatonNetwork(config=config, seed=11)
    root = net.bootstrap()
    catalog = [
        publication_key(
            rng.randint(1900, 2024), rng.randint(1, 12), rng.randint(1, 28)
        )
        for _ in range(5_000)
    ]
    net.peer(root).store.extend(catalog)
    for _ in range(63):
        net.join()
    print(f"catalog of {len(catalog)} editions across {net.size} mirrors")

    # Point query: a specific edition.
    probe = catalog[1234]
    hit = net.search_exact(probe)
    print(f"edition {probe}: {'present' if hit.found else 'missing'} "
          f"({hit.trace.total} messages)")

    # Range query: everything published in the 1990s.
    nineties = net.search_range(
        publication_key(1990, 1, 1), publication_key(2000, 1, 1)
    )
    expected = sum(
        1
        for key in catalog
        if publication_key(1990, 1, 1) <= key < publication_key(2000, 1, 1)
    )
    assert len(nineties.keys) == expected
    print(f"1990s editions: {len(nineties.keys)} found on "
          f"{nineties.nodes_visited} mirrors in {nineties.trace.total} messages")

    # Narrow range: one month's publications.
    june_2001 = net.search_range(
        publication_key(2001, 6, 1), publication_key(2001, 7, 1)
    )
    print(f"June 2001 editions: {len(june_2001.keys)} found in "
          f"{june_2001.trace.total} messages")

    # New acquisitions stream in; ranges at the extremes expand if needed.
    for year, month, day in [(2025, 1, 15), (1899, 12, 31)]:
        key = publication_key(year, month, day)
        result = net.insert(key)
        assert net.search_exact(key).found
        print(f"acquired edition {key} -> peer@{result.owner} "
              f"({result.trace.total} messages)")

    # Show how evenly the catalog spreads over mirrors.
    sizes = sorted(len(p.store) for p in net.peers.values())
    print(f"mirror load: min={sizes[0]}, median={sizes[len(sizes) // 2]}, "
          f"max={sizes[-1]}")


if __name__ == "__main__":
    main()
