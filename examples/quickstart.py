"""Quickstart: build a BATON overlay, store keys, run queries.

Run::

    python examples/quickstart.py
"""

from repro import BatonNetwork, check_invariants, tree_height


def main() -> None:
    # A 100-peer network. Every peer is a simulated host; `seed` makes the
    # whole run (join order, entry points, splits) reproducible.
    net = BatonNetwork.build(100, seed=7)
    print(f"built a {net.size}-peer BATON overlay, tree height {tree_height(net)}")

    # Insert a few keys. Each insert is routed through the overlay; the
    # trace tells you how many messages it cost (the paper's metric).
    keys = [123_456, 777_000_111, 42, 999_999_998]
    for key in keys:
        result = net.insert(key)
        print(f"insert({key}): owner=peer@{result.owner}, "
              f"{result.trace.total} messages")

    # Exact-match lookups (O(log N) messages).
    for key in keys:
        hit = net.search_exact(key)
        assert hit.found
        print(f"search_exact({key}): found at peer@{hit.owner} "
              f"in {hit.trace.total} messages")

    # A range query: O(log N) to reach the range, O(1) per covered peer.
    span = net.search_range(100_000, 200_000_000)
    print(f"search_range([1e5, 2e8)): {len(span.keys)} keys from "
          f"{span.nodes_visited} peers in {span.trace.total} messages")

    # Membership changes keep the tree balanced automatically.
    departure = net.leave(net.random_peer_address())
    print(f"one peer left (replacement={departure.replacement}), "
          f"{departure.total_messages} messages")
    arrival = net.join()
    print(f"one peer joined under peer@{arrival.parent}, "
          f"{arrival.total_messages} messages")

    # The structural invariants from the paper's theorems all still hold.
    check_invariants(net)
    print("all invariants hold: balance, Theorem 1/2, adjacency, "
          "range partition")


if __name__ == "__main__":
    main()
