"""Concurrent churn racing queries on the event-driven runtime.

The other examples execute operations one at a time.  Here, nothing waits:
joins, leaves, crashes, inserts and queries are all *in flight together* on
a shared simulated clock, each hop taking its own sampled latency.  Queries
launched mid-churn race stale routing state — most route around it for a
few extra hops, a few ride a crashing peer and are lost, and the report at
the end shows exactly how many and how slow.

Run::

    python examples/concurrent_churn_queries.py
"""

from __future__ import annotations

from repro import overlays
from repro.core.invariants import collect_violations
from repro.sim.latency import ExponentialLatency
from repro.sim.runtime import AsyncBatonNetwork
from repro.util.rng import SeededRng
from repro.workloads.concurrent import ConcurrentConfig, run_concurrent_workload
from repro.workloads.generators import uniform_keys


def main() -> None:
    rng = SeededRng(2024)
    anet = AsyncBatonNetwork.build(
        300,
        seed=17,
        latency=ExponentialLatency(mean=1.0, rng=rng.child("latency")),
    )
    keys = uniform_keys(3_000, seed=5)
    anet.net.bulk_load(keys)
    print(f"built {anet.net.size} peers, {len(keys)} keys loaded")

    # --- a single query, watched hop by hop --------------------------------
    future = anet.submit_search_exact(keys[42])
    future.add_done_callback(
        lambda f: print(
            f"  first query answered at t={f.completed_at:.2f} "
            f"after {f.hops} hops ({f.trace.total} messages)"
        )
    )
    anet.drain()

    # --- sustained concurrent load -----------------------------------------
    print("\nphase 1: heavy graceful churn racing queries")
    report = run_concurrent_workload(
        anet,
        keys,
        ConcurrentConfig(
            duration=60.0,
            churn_rate=2.0,     # two membership changes per mean hop latency
            query_rate=10.0,
            insert_rate=1.0,
            range_fraction=0.25,
        ),
        seed=1,
    )
    for line in report.summary_lines():
        print(f"  {line}")

    print("\nphase 2: crashes mixed in (repaired after the window)")
    report = run_concurrent_workload(
        anet,
        keys,
        ConcurrentConfig(
            duration=60.0,
            churn_rate=2.0,
            query_rate=10.0,
            fail_fraction=0.3,  # a third of departures are abrupt crashes
            range_fraction=0.25,
        ),
        seed=2,
    )
    for line in report.summary_lines():
        print(f"  {line}")

    violations = collect_violations(anet.net)
    # Heavy churn can leave a rare residual Theorem-1 imbalance that the
    # next join would heal; with these seeds the structure comes out clean.
    state = "invariants OK" if not violations else (
        f"{len(violations)} residual violation(s) — healed by future joins"
    )
    print(
        f"\nfinal structure: {anet.net.size} peers, {state}, "
        f"{anet.net.bus.stats.total} messages counted overall"
    )

    # --- phase 3: the same storm on every registered overlay ----------------
    # The runtime is overlay-agnostic: Chord and the multiway tree take the
    # identical churn-racing-queries workload, so the per-overlay costs the
    # paper compares (range-scan cliffs, long walks) show up side by side.
    print("\nphase 3: identical workload on every overlay in the registry")
    for name in overlays.available():
        rival = overlays.get(name).build_async(
            150,
            seed=17,
            latency=ExponentialLatency(mean=1.0, rng=SeededRng(99).child(name)),
        )
        rival.net.bulk_load(keys)
        report = run_concurrent_workload(
            rival,
            keys,
            ConcurrentConfig(
                duration=40.0, churn_rate=1.0, query_rate=8.0, range_fraction=0.25
            ),
            seed=3,
        )
        print(
            f"  {name:9s} success {report.query_success_rate:.3f}  "
            f"p50/p99 {report.query_latency_p50:.1f}/{report.query_latency_p99:.1f}  "
            f"{report.messages_per_query:.1f} msgs/query"
        )


if __name__ == "__main__":
    main()
