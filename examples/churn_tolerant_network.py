"""Surviving churn and crashes: fault-tolerant routing plus repair.

Demonstrates §III-C/§III-D: peers crash without warning, queries route
around the holes (paying extra messages), the parent-led repair restores
the structure, and the network keeps absorbing joins and leaves throughout.

Run::

    python examples/churn_tolerant_network.py
"""

from __future__ import annotations

from repro import BatonNetwork, check_invariants
from repro.util.rng import SeededRng
from repro.workloads.generators import uniform_keys


def average_query_cost(net: BatonNetwork, probes: list[int]) -> float:
    return sum(net.search_exact(k).trace.total for k in probes) / len(probes)


def main() -> None:
    rng = SeededRng(99)
    net = BatonNetwork.build(150, seed=5)
    keys = uniform_keys(3_000, seed=1)
    net.bulk_load(keys)
    probes = [keys[i] for i in range(0, 3_000, 60)]

    healthy_cost = average_query_cost(net, probes)
    print(f"healthy network: {net.size} peers, "
          f"avg query cost {healthy_cost:.2f} messages")

    # --- a burst of concurrent crashes and arrivals -----------------------
    crashed = []
    for _ in range(10):
        victim = net.random_peer_address()
        net.fail(victim)
        crashed.append(victim)
        net.join()  # arrivals do not stop during the outage
    degraded_cost = average_query_cost(net, probes)
    answered = sum(1 for k in probes if net.search_exact(k).found)
    print(f"during the outage ({len(crashed)} peers dead): "
          f"avg query cost {degraded_cost:.2f} messages "
          f"(+{degraded_cost - healthy_cost:.2f}), "
          f"{answered}/{len(probes)} probes still answered")

    # --- repair ------------------------------------------------------------
    repairs = net.repair_all()
    repair_messages = sum(r.trace.total for r in repairs)
    print(f"repaired {len(repairs)} failures with {repair_messages} messages")
    check_invariants(net)
    print("invariants restored: balance, routing tables, range partition")

    repaired_cost = average_query_cost(net, probes)
    print(f"after repair: avg query cost {repaired_cost:.2f} messages")

    # --- data accounting -----------------------------------------------------
    # The paper's protocol restores ranges, not content: keys stored on the
    # crashed peers are gone, everything else survives.
    surviving = sum(len(p.store) for p in net.peers.values())
    print(f"{surviving}/{len(keys)} keys survive "
          f"({len(keys) - surviving} were on crashed peers)")

    # --- ordinary churn continues --------------------------------------------
    for _ in range(40):
        if net.size > 20 and rng.random() < 0.5:
            net.leave(net.random_peer_address())
        else:
            net.join()
    check_invariants(net)
    print(f"after 40 more churn events: {net.size} peers, still consistent")


if __name__ == "__main__":
    main()
